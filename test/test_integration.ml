(* End-to-end cluster tests: election, failover, replication, tuning. *)

module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Monitor = Harness.Monitor

let ms = Des.Time.ms

let lan_conditions ?(rtt_ms = 10.) ?(jitter = 0.05) ?(loss = 0.) () =
  Netsim.Conditions.(constant (profile ~rtt_ms ~jitter ~loss ()))

let make_cluster ?(seed = 7L) ?(n = 5) ?(config = Raft.Config.static ())
    ?(conditions = lan_conditions ()) () =
  let c = Cluster.create ~seed ~n ~config ~conditions ~check:Check.Always () in
  Cluster.start c;
  c

let leader_id c =
  match Cluster.leader c with
  | Some l -> Raft.Node.id l
  | None -> Alcotest.fail "expected a leader"

let test_elects_leader () =
  let c = make_cluster () in
  match Cluster.await_leader c ~timeout:(Des.Time.sec 10) with
  | None -> Alcotest.fail "no leader elected within 10s"
  | Some l ->
      Alcotest.(check bool)
        "leader role" true
        (Raft.Types.is_leader (Raft.Server.role (Raft.Node.server l)))

let test_single_leader_per_term () =
  let c = make_cluster () in
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  Cluster.run_for c (Des.Time.sec 30);
  (* Across the whole trace, at most one Role_change-to-leader per term. *)
  let leaders_by_term = Hashtbl.create 16 in
  Des.Mtrace.iter (Cluster.trace c) ~f:(fun _ probe ->
      match probe with
      | Raft.Probe.Role_change { id; role = Raft.Types.Leader; term } ->
          (match Hashtbl.find_opt leaders_by_term term with
          | Some other when not (Netsim.Node_id.equal other id) ->
              Alcotest.failf "two leaders in term %d" term
          | Some _ | None -> ());
          Hashtbl.replace leaders_by_term term id
      | _ -> ())

let test_failover () =
  let c = make_cluster () in
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  let old = leader_id c in
  match Fault.fail_and_measure c () with
  | Error msg -> Alcotest.fail msg
  | Ok outcome ->
      Alcotest.(check bool)
        "new leader differs" false
        (Netsim.Node_id.equal outcome.Fault.new_leader old);
      Alcotest.(check bool)
        "detection positive" true
        (outcome.Fault.detection_ms > 0.);
      Alcotest.(check bool)
        "ots >= detection" true
        (outcome.Fault.ots_ms >= outcome.Fault.detection_ms)

let submit_and_commit c ~n =
  let committed = ref 0 in
  let submit i =
    let payload =
      Kvsm.Command.to_payload
        (Kvsm.Command.Put
           { key = Printf.sprintf "k%d" i; value = Printf.sprintf "v%d" i })
    in
    match
      Cluster.submit_target c ~payload ~client_id:1 ~seq:i
        ~on_result:(fun ~committed:ok -> if ok then incr committed)
    with
    | `Accepted -> ()
    | `Not_leader _ -> Alcotest.fail "leader refused a proposal"
  in
  for i = 1 to n do
    submit i;
    Cluster.run_for c (ms 20)
  done;
  Cluster.run_for c (Des.Time.sec 2);
  !committed

let test_replication_converges () =
  let c = make_cluster () in
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  let committed = submit_and_commit c ~n:50 in
  Alcotest.(check int) "all committed" 50 committed;
  let digests =
    List.map
      (fun id -> Kvsm.Store.state_digest (Cluster.store c id))
      (Cluster.node_ids c)
  in
  match digests with
  | [] -> Alcotest.fail "no stores"
  | d :: rest ->
      List.iteri
        (fun i d' -> Alcotest.(check string) (Printf.sprintf "replica %d" i) d d')
        rest

let test_replication_survives_failover () =
  let c = make_cluster () in
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  let first = submit_and_commit c ~n:20 in
  Alcotest.(check int) "first batch committed" 20 first;
  (match Fault.fail_and_measure c () with
  | Error msg -> Alcotest.fail msg
  | Ok _ -> ());
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  let c2 = ref 0 in
  for i = 100 to 119 do
    (match
       Cluster.submit_target c
         ~payload:
           (Kvsm.Command.to_payload
              (Kvsm.Command.Put { key = "x" ^ string_of_int i; value = "y" }))
         ~client_id:2 ~seq:i
         ~on_result:(fun ~committed -> if committed then incr c2)
     with
    | `Accepted -> ()
    | `Not_leader _ -> ());
    Cluster.run_for c (ms 20)
  done;
  Cluster.run_for c (Des.Time.sec 3);
  Alcotest.(check bool)
    (Printf.sprintf "second batch mostly committed (%d)" !c2)
    true (!c2 >= 18);
  (* All live replicas converge. *)
  let digests =
    List.filter_map
      (fun id ->
        if Raft.Node.is_paused (Cluster.node c id) then None
        else Some (Kvsm.Store.state_digest (Cluster.store c id)))
      (Cluster.node_ids c)
  in
  match digests with
  | d :: rest ->
      List.iter (fun d' -> Alcotest.(check string) "converged" d d') rest
  | [] -> Alcotest.fail "no live stores"

let test_dynatune_tunes_down () =
  let config = Raft.Config.dynatune () in
  let c =
    make_cluster ~config
      ~conditions:(lan_conditions ~rtt_ms:100. ~jitter:0.05 ())
      ()
  in
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  (* Give the tuner time to warm up (min_list_size heartbeats). *)
  Cluster.run_for c (Des.Time.sec 30);
  let followers =
    List.filter
      (fun id -> not (Netsim.Node_id.equal id (leader_id c)))
      (Cluster.node_ids c)
  in
  List.iter
    (fun id ->
      let et = Monitor.election_timeout_ms c id in
      Alcotest.(check bool)
        (Printf.sprintf "follower %d tuned Et=%.1f < 400ms"
           (Netsim.Node_id.to_int id) et)
        true (et < 400.);
      Alcotest.(check bool)
        (Printf.sprintf "follower %d Et=%.1f > RTT" (Netsim.Node_id.to_int id)
           et)
        true (et > 100.))
    followers

let test_dynatune_faster_detection () =
  let run config =
    let c =
      make_cluster ~config
        ~conditions:(lan_conditions ~rtt_ms:100. ~jitter:0.05 ())
        ()
    in
    ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
    Cluster.run_for c (Des.Time.sec 30);
    match Fault.fail_and_measure c () with
    | Error msg -> Alcotest.fail msg
    | Ok o -> o.Fault.detection_ms
  in
  let raft = run (Raft.Config.static ()) in
  let dynatune = run (Raft.Config.dynatune ()) in
  Alcotest.(check bool)
    (Printf.sprintf "dynatune (%.0fms) detects faster than raft (%.0fms)"
       dynatune raft)
    true
    (dynatune < raft /. 2.)

let test_no_false_elections_under_loss () =
  let config = Raft.Config.dynatune () in
  let c =
    make_cluster ~config
      ~conditions:(lan_conditions ~rtt_ms:200. ~jitter:0.05 ~loss:0.10 ())
      ()
  in
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  Cluster.run_for c (Des.Time.sec 60);
  let from = Des.Time.sec 20 and until = Des.Time.sec 60 in
  let ots = Monitor.total_ots_ms c ~from ~until in
  Alcotest.(check (float 0.001)) "no OTS under 10% loss" 0. ots

let test_extension_modes_stay_healthy () =
  (* Both Section IV-E extensions, together, must preserve liveness:
     election, replication, failover. *)
  let config =
    Raft.Config.with_extensions ~suppress_heartbeats_under_load:true
      ~consolidated_timer:true (Raft.Config.dynatune ())
  in
  let c = make_cluster ~config () in
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  let committed = submit_and_commit c ~n:30 in
  Alcotest.(check int) "all committed under suppression" 30 committed;
  match Fault.fail_and_measure c () with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
      Alcotest.(check bool) "failover still detected quickly" true
        (o.Fault.detection_ms < 2500.)

let test_fix_k_mode_tunes_et_only () =
  let c =
    make_cluster
      ~config:(Raft.Config.fix_k ~k:10 ())
      ~conditions:(lan_conditions ~rtt_ms:200. ~jitter:0.02 ())
      ()
  in
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  Cluster.run_for c (Des.Time.sec 30);
  let leader = leader_id c in
  let follower =
    List.find
      (fun id -> not (Netsim.Node_id.equal id leader))
      (Cluster.node_ids c)
  in
  (* Et tuned to ~RTT, but h pinned to Et/10 regardless of zero loss. *)
  let et = Monitor.election_timeout_ms c follower in
  Alcotest.(check bool) (Printf.sprintf "Et tuned (%.0f)" et) true
    (et > 200. && et < 300.);
  let h =
    match Monitor.leader_h_ms c ~follower with
    | Some h -> h
    | None -> Alcotest.fail "no heartbeat interval toward follower"
  in
  Alcotest.(check bool)
    (Printf.sprintf "h = Et/10 (%.1f vs %.1f)" h (et /. 10.))
    true
    (abs_float (h -. (et /. 10.)) < 3.)

let test_fig6b_mechanism_end_to_end () =
  (* The radical RTT spike: Dynatune false-detects but aborts at the
     pre-vote, so no term change and no leadership change. *)
  let conditions =
    Netsim.Conditions.piecewise
      [
        (Des.Time.zero, Netsim.Conditions.profile ~rtt_ms:50. ~jitter:0.02 ());
        (Des.Time.sec 60, Netsim.Conditions.profile ~rtt_ms:500. ~jitter:0.02 ());
        (Des.Time.sec 90, Netsim.Conditions.profile ~rtt_ms:50. ~jitter:0.02 ());
      ]
  in
  let c = make_cluster ~config:(Raft.Config.dynatune ()) ~conditions () in
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 10));
  Cluster.run_for c (Des.Time.sec 50);
  let leader_before = leader_id c in
  let term_before = Raft.Server.term (Raft.Node.server (Cluster.node c leader_before)) in
  Cluster.run_for c (Des.Time.sec 70);
  let aborts = ref 0 in
  Des.Mtrace.iter (Cluster.trace c) ~f:(fun _ p ->
      match p with Raft.Probe.Pre_vote_aborted _ -> incr aborts | _ -> ());
  Alcotest.(check bool) "false detections aborted" true (!aborts > 0);
  Alcotest.(check int) "leadership undisturbed"
    (Netsim.Node_id.to_int leader_before)
    (Netsim.Node_id.to_int (leader_id c));
  Alcotest.(check int) "term undisturbed" term_before
    (Raft.Server.term (Raft.Node.server (Cluster.node c leader_before)))

let tests =
  [
    Alcotest.test_case "elects a leader" `Quick test_elects_leader;
    Alcotest.test_case "single leader per term" `Quick
      test_single_leader_per_term;
    Alcotest.test_case "failover elects a new leader" `Quick test_failover;
    Alcotest.test_case "replication converges" `Quick
      test_replication_converges;
    Alcotest.test_case "replication survives failover" `Quick
      test_replication_survives_failover;
    Alcotest.test_case "dynatune tunes Et down" `Quick test_dynatune_tunes_down;
    Alcotest.test_case "dynatune detects faster than raft" `Quick
      test_dynatune_faster_detection;
    Alcotest.test_case "no false elections under loss" `Quick
      test_no_false_elections_under_loss;
    Alcotest.test_case "extension modes stay healthy" `Quick
      test_extension_modes_stay_healthy;
    Alcotest.test_case "fix-k tunes Et only" `Quick test_fix_k_mode_tunes_et_only;
    Alcotest.test_case "fig6b mechanism end-to-end" `Slow
      test_fig6b_mechanism_end_to_end;
  ]
