(* Unit tests for the AST determinism analyzer (lib/analysis): call
   graph construction and resolution, interprocedural effect taint,
   cross-domain shared-state detection, protocol-match exhaustiveness,
   parse-error surfacing and the allowlist. *)

module A = Analysis
module F = Analysis.Finding
module Cg = Analysis.Callgraph

let file path content = { A.path; content }
let analyze ?config files = A.analyze ?config files
let with_rule rule fs = List.filter (fun (f : F.t) -> f.rule = rule) fs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let src lib path content = A.Source.parse ~library:lib ~path content

(* {2 Call graph} *)

let test_callgraph_build () =
  let cg =
    Cg.build [ src "Raft" "lib/raft/a.ml" "let f x = x + 1\nlet g y = f y" ]
  in
  let g =
    match Cg.lookup cg ~path:"lib/raft/a.ml" ~name:"g" with
    | Some v -> v
    | None -> Alcotest.fail "g not found"
  in
  Alcotest.(check int) "g line" 2 g.Cg.vline;
  Alcotest.(check string) "display" "Raft.A.g" (Cg.display g);
  match Cg.callees cg g with
  | [ (callee, line) ] ->
      Alcotest.(check string) "edge g->f" "f" callee.Cg.vname;
      Alcotest.(check int) "edge line" 2 line
  | edges -> Alcotest.failf "expected one edge, got %d" (List.length edges)

let test_callgraph_resolution () =
  let cg =
    Cg.build
      [
        src "Stats" "lib/stats/rng.ml" "let fresh () = 0";
        src "Raft" "lib/raft/a.ml" "let f x = x";
        src "Raft" "lib/raft/b.ml" "let h () = A.f (Stats.Rng.fresh ())";
      ]
  in
  let resolve parts =
    Cg.resolve cg ~path:"lib/raft/b.ml" ~lib:"Raft" parts
  in
  (match resolve [ "A"; "f" ] with
  | Some v -> Alcotest.(check string) "same-library" "lib/raft/a.ml" v.Cg.vpath
  | None -> Alcotest.fail "A.f unresolved");
  (match resolve [ "Stats"; "Rng"; "fresh" ] with
  | Some v ->
      Alcotest.(check string) "library-qualified" "lib/stats/rng.ml" v.Cg.vpath
  | None -> Alcotest.fail "Stats.Rng.fresh unresolved");
  Alcotest.(check bool) "locals stay unresolved" true
    (resolve [ "nonexistent" ] = None)

(* {2 Effect taint} *)

(* The wrappers live OUTSIDE the entry directories, so the only way to
   reach the sink is the two-hop chain from the lib/raft entry point. *)
let taint_files =
  [
    file "lib/raft/entry.ml" "let run () = Stats.Util.step ()";
    file "lib/stats/util.ml"
      "let step () = clock ()\nlet clock () = Unix.gettimeofday ()";
  ]

let test_taint_two_hops () =
  match with_rule "effect-taint" (analyze taint_files) with
  | [ f ] ->
      Alcotest.(check string) "points at the effectful file" "lib/stats/util.ml"
        f.F.path;
      Alcotest.(check int) "line of the sink" 2 f.F.line;
      (* the full chain through both wrappers must be in the message *)
      List.iter
        (fun part ->
          Alcotest.(check bool) ("chain mentions " ^ part) true
            (contains f.F.message part))
        [ "run"; "step"; "clock"; "Unix.gettimeofday" ]
  | fs -> Alcotest.failf "expected one taint finding, got %d" (List.length fs)

let test_taint_requires_entry_reachability () =
  (* Same sink, but in a module no entry point reaches: clean. *)
  let fs =
    analyze [ file "lib/telemetry/t.ml" "let now () = Unix.gettimeofday ()" ]
  in
  Alcotest.(check int) "no findings" 0 (List.length (with_rule "effect-taint" fs))

let test_taint_forensics_entry () =
  (* The forensics modules are taint roots themselves: an ambient
     effect reachable from one fires without any lib/raft caller... *)
  let fs =
    analyze
      [
        file "lib/telemetry/forensics.ml"
          "let stamp () = Unix.gettimeofday ()";
      ]
  in
  Alcotest.(check int) "forensics is an entry dir" 1
    (List.length (with_rule "effect-taint" fs));
  let fs =
    analyze
      [ file "lib/telemetry/recorder.ml" "let jitter () = Random.float 1." ]
  in
  Alcotest.(check int) "recorder is an entry dir" 1
    (List.length (with_rule "effect-taint" fs));
  (* ...but the exporters are not: chrome_trace writing a file when
     asked stays legitimate. *)
  let fs =
    analyze
      [
        file "lib/telemetry/chrome_trace.ml"
          "let write path = open_out path";
      ]
  in
  Alcotest.(check int) "chrome_trace stays exempt" 0
    (List.length (with_rule "effect-taint" fs))

let test_taint_allowlist () =
  let config =
    A.Driver.default_config ~allow:[ ("util.ml", "effect-taint") ] ()
  in
  let fs = with_rule "effect-taint" (analyze ~config taint_files) in
  Alcotest.(check int) "suppressed" 0 (List.length fs)

(* {2 Shared state} *)

let shared_body =
  "let tbl = Hashtbl.create 4\n\
   type c = { mutable n : int }\n\
   let cell = { n = 0 }\n\
   let work x = Hashtbl.length tbl + cell.n + x\n"

let test_shared_state_fires () =
  let fs =
    analyze
      [ file "lib/raft/s.ml" (shared_body ^ "let run p xs = Pool.map p work xs") ]
  in
  let lines =
    with_rule "shared-state" fs |> List.map (fun (f : F.t) -> f.line)
  in
  Alcotest.(check (list int)) "hashtbl and mutable record flagged" [ 1; 3 ] lines

let test_shared_state_needs_spawn () =
  (* Identical mutable state, but nothing hands the module to a pool. *)
  let fs = analyze [ file "lib/raft/s.ml" shared_body ] in
  Alcotest.(check int) "clean without a spawn site" 0
    (List.length (with_rule "shared-state" fs))

(* {2 Protocol exhaustiveness} *)

let test_protocol_wildcard_fires () =
  let fs =
    analyze
      [
        file "lib/raft/m.ml"
          "type m = A | B [@@protocol]\nlet f = function A -> 0 | _ -> 1";
      ]
  in
  match with_rule "protocol-wildcard" fs with
  | [ f ] -> Alcotest.(check int) "line" 2 f.F.line
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_protocol_wildcard_negative () =
  let fs =
    analyze
      [
        file "lib/raft/m.ml"
          ("type m = A | B [@@protocol]\n"
          ^ "let exhaustive = function A -> 0 | B -> 1\n"
          ^ "type u = C | D\n"
          ^ "let unmarked = function C -> 0 | _ -> 1");
      ]
  in
  Alcotest.(check int) "no findings" 0
    (List.length (with_rule "protocol-wildcard" fs))

(* {2 Parse errors, rendering, allowlist parsing} *)

let test_parse_error () =
  match analyze [ file "lib/raft/broken.ml" "let = (" ] with
  | [ f ] -> Alcotest.(check string) "rule" "parse-error" f.F.rule
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_render () =
  let f = F.v ~path:"lib/x.ml" ~line:3 ~rule:"effect-taint" "msg" in
  Alcotest.(check string) "render" "lib/x.ml:3: [effect-taint] msg" (F.render f)

let test_parse_allow () =
  (match F.parse_allow "# comment\n\nlib/x.ml:effect-taint\n" with
  | Ok allow ->
      Alcotest.(check bool) "suffix match" true
        (F.allowed allow ~path:"lib/x.ml" ~rule:"effect-taint");
      Alcotest.(check bool) "rule must match" false
        (F.allowed allow ~path:"lib/x.ml" ~rule:"shared-state")
  | Error line -> Alcotest.failf "parse_allow failed: %s" line);
  match F.parse_allow "garbage-without-colon" with
  | Ok _ -> Alcotest.fail "malformed entry accepted"
  | Error _ -> ()

let tests =
  [
    Alcotest.test_case "callgraph-build" `Quick test_callgraph_build;
    Alcotest.test_case "callgraph-resolution" `Quick test_callgraph_resolution;
    Alcotest.test_case "taint-two-hops" `Quick test_taint_two_hops;
    Alcotest.test_case "taint-needs-entry" `Quick
      test_taint_requires_entry_reachability;
    Alcotest.test_case "taint-forensics-entry" `Quick
      test_taint_forensics_entry;
    Alcotest.test_case "taint-allowlist" `Quick test_taint_allowlist;
    Alcotest.test_case "shared-state-fires" `Quick test_shared_state_fires;
    Alcotest.test_case "shared-state-needs-spawn" `Quick
      test_shared_state_needs_spawn;
    Alcotest.test_case "protocol-wildcard" `Quick test_protocol_wildcard_fires;
    Alcotest.test_case "protocol-wildcard-negative" `Quick
      test_protocol_wildcard_negative;
    Alcotest.test_case "parse-error" `Quick test_parse_error;
    Alcotest.test_case "finding-render" `Quick test_render;
    Alcotest.test_case "parse-allow" `Quick test_parse_allow;
  ]
