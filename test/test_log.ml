(* Unit tests for the replicated log. *)

module Log = Raft.Log

let entry term index = { Log.term; index; command = Log.Noop }

let data term index payload =
  { Log.term; index; command = Log.Data { payload; client_id = 0; seq = index } }

let test_empty_log () =
  let l = Log.create () in
  Alcotest.(check int) "last index" 0 (Log.last_index l);
  Alcotest.(check int) "last term" 0 (Log.last_term l);
  Alcotest.(check (option int)) "sentinel term" (Some 0) (Log.term_at l 0);
  Alcotest.(check (option int)) "beyond end" None (Log.term_at l 1)

let test_append_new () =
  let l = Log.create () in
  let e1 = Log.append_new l ~term:1 Log.Noop in
  let e2 = Log.append_new l ~term:1 (Log.Data { payload = "x"; client_id = 1; seq = 1 }) in
  Alcotest.(check int) "first index" 1 e1.Log.index;
  Alcotest.(check int) "second index" 2 e2.Log.index;
  Alcotest.(check int) "last term" 1 (Log.last_term l);
  Alcotest.(check (option int)) "term lookup" (Some 1) (Log.term_at l 2)

let test_try_append_success () =
  let l = Log.create () in
  (match
     Log.try_append l ~prev_index:0 ~prev_term:0
       ~entries:[| entry 1 1; entry 1 2 |]
   with
  | `Ok covered -> Alcotest.(check int) "covered" 2 covered
  | `Conflict _ -> Alcotest.fail "append at origin must succeed");
  Alcotest.(check int) "length" 2 (Log.last_index l)

let test_try_append_missing_prev () =
  let l = Log.create () in
  match Log.try_append l ~prev_index:5 ~prev_term:1 ~entries:[| entry 1 6 |] with
  | `Conflict hint -> Alcotest.(check int) "hint = log end + 1" 1 hint
  | `Ok _ -> Alcotest.fail "must conflict when predecessor is missing"

let test_try_append_term_mismatch () =
  let l = Log.create () in
  ignore (Log.append_new l ~term:1 Log.Noop);
  ignore (Log.append_new l ~term:1 Log.Noop);
  match Log.try_append l ~prev_index:2 ~prev_term:9 ~entries:[||] with
  | `Conflict hint -> Alcotest.(check int) "hint points at conflict" 2 hint
  | `Ok _ -> Alcotest.fail "must conflict on term mismatch"

let test_try_append_truncates_conflicts () =
  let l = Log.create () in
  ignore (Log.append_new l ~term:1 Log.Noop);
  ignore (Log.append_new l ~term:1 (Log.Data { payload = "old"; client_id = 0; seq = 0 }));
  ignore (Log.append_new l ~term:1 (Log.Data { payload = "old2"; client_id = 0; seq = 0 }));
  (* New leader at term 2 overwrites index 2 onward. *)
  (match
     Log.try_append l ~prev_index:1 ~prev_term:1
       ~entries:[| data 2 2 "new" |]
   with
  | `Ok covered -> Alcotest.(check int) "covered" 2 covered
  | `Conflict _ -> Alcotest.fail "expected success");
  Alcotest.(check int) "conflicting suffix dropped" 2 (Log.last_index l);
  match Log.entry_at l 2 with
  | Some { Log.term = 2; command = Log.Data { payload = "new"; _ }; _ } -> ()
  | _ -> Alcotest.fail "index 2 must hold the new entry"

let test_try_append_idempotent () =
  let l = Log.create () in
  let es = [| entry 1 1; entry 1 2; entry 1 3 |] in
  ignore (Log.try_append l ~prev_index:0 ~prev_term:0 ~entries:es);
  (* A duplicate append (retransmission) must not truncate or duplicate. *)
  (match Log.try_append l ~prev_index:0 ~prev_term:0 ~entries:es with
  | `Ok covered -> Alcotest.(check int) "covered" 3 covered
  | `Conflict _ -> Alcotest.fail "duplicate append must succeed");
  Alcotest.(check int) "no growth" 3 (Log.last_index l)

let test_try_append_partial_overlap () =
  let l = Log.create () in
  ignore
    (Log.try_append l ~prev_index:0 ~prev_term:0
       ~entries:[| entry 1 1; entry 1 2 |]);
  (match
     Log.try_append l ~prev_index:1 ~prev_term:1
       ~entries:[| entry 1 2; entry 1 3; entry 1 4 |]
   with
  | `Ok covered -> Alcotest.(check int) "covered" 4 covered
  | `Conflict _ -> Alcotest.fail "overlap must succeed");
  Alcotest.(check int) "extended" 4 (Log.last_index l)

let test_heartbeat_append_empty () =
  let l = Log.create () in
  ignore (Log.append_new l ~term:1 Log.Noop);
  match Log.try_append l ~prev_index:1 ~prev_term:1 ~entries:[||] with
  | `Ok covered -> Alcotest.(check int) "covered = prev" 1 covered
  | `Conflict _ -> Alcotest.fail "empty append with matching prev succeeds"

let test_slice () =
  let l = Log.create () in
  for _ = 1 to 5 do
    ignore (Log.append_new l ~term:1 Log.Noop)
  done;
  Alcotest.(check int) "middle slice" 2
    (Array.length (Log.slice l ~from:2 ~max:2));
  Alcotest.(check int) "tail slice clipped" 2
    (Array.length (Log.slice l ~from:4 ~max:10));
  Alcotest.(check int) "empty beyond end" 0
    (Array.length (Log.slice l ~from:6 ~max:10));
  let indices =
    Array.to_list
      (Array.map (fun (e : Log.entry) -> e.Log.index) (Log.slice l ~from:2 ~max:3))
  in
  Alcotest.(check (list int)) "contiguous" [ 2; 3; 4 ] indices

let test_up_to_date () =
  let l = Log.create () in
  ignore (Log.append_new l ~term:2 Log.Noop);
  ignore (Log.append_new l ~term:3 Log.Noop);
  (* mine: last (2, term 3) *)
  Alcotest.(check bool) "higher term wins" true
    (Log.up_to_date l ~last_index:1 ~last_term:4);
  Alcotest.(check bool) "same term longer wins" true
    (Log.up_to_date l ~last_index:3 ~last_term:3);
  Alcotest.(check bool) "same term same length ok" true
    (Log.up_to_date l ~last_index:2 ~last_term:3);
  Alcotest.(check bool) "shorter same term loses" false
    (Log.up_to_date l ~last_index:1 ~last_term:3);
  Alcotest.(check bool) "lower term loses" false
    (Log.up_to_date l ~last_index:10 ~last_term:2)

(* {2 Appends straddling the snapshot boundary}

   After compaction the entries at or below [snapshot_index] exist only
   as the boundary pair, yet a slow leader may still send appends whose
   predecessor — or a whole prefix of whose batch — lies below it.
   [try_append] must treat the compacted prefix as matching (it was
   committed before it was compacted) and splice in only the live
   suffix. *)

module Q = QCheck

let to_alcotest = QCheck_alcotest.to_alcotest

(* A log holding [total] entries (terms non-decreasing, bumped at
   [term_switch]) compacted at [boundary]. *)
let build ~total ~term_switch ~boundary =
  let l = Log.create () in
  for i = 1 to total do
    ignore (Log.append_new l ~term:(if i < term_switch then 1 else 2) Log.Noop)
  done;
  Log.compact l ~upto:boundary;
  l

let gen_straddle =
  Q.make
    ~print:(fun (total, term_switch, boundary, prev) ->
      Printf.sprintf "total=%d term_switch=%d boundary=%d prev=%d" total
        term_switch boundary prev)
    Q.Gen.(
      int_range 2 40 >>= fun total ->
      int_range 1 total >>= fun term_switch ->
      int_range 1 total >>= fun boundary ->
      int_range 0 boundary >>= fun prev ->
      return (total, term_switch, boundary, prev))

let term_of ~term_switch i = if i < term_switch then 1 else 2

let prop_append_below_boundary_matches =
  Q.Test.make ~count:500
    ~name:"try_append: predecessor below the boundary is matching"
    gen_straddle
    (fun (total, term_switch, boundary, prev) ->
      let l = build ~total ~term_switch ~boundary in
      (* Replay the true suffix starting below the boundary, exactly as
         a leader that has not yet learned of our compaction would. *)
      let entries =
        Array.init (total - prev) (fun k ->
            let i = prev + 1 + k in
            { Log.term = term_of ~term_switch i; index = i; command = Log.Noop })
      in
      match
        Log.try_append l ~prev_index:prev
          ~prev_term:(term_of ~term_switch prev) ~entries
      with
      | `Ok covered ->
          covered = total
          && Log.last_index l = total
          && Log.snapshot_index l = boundary
          && Log.first_available l = boundary + 1
      | `Conflict _ -> false)

let prop_append_conflict_truncates_at_boundary =
  Q.Test.make ~count:500
    ~name:"try_append: conflicting suffix truncates, never below boundary"
    gen_straddle
    (fun (total, term_switch, boundary, prev) ->
      let l = build ~total ~term_switch ~boundary in
      (* A newer leader (term 3) rewrites everything after [prev]; the
         entries at or below the boundary are untouchable, and the tail
         above [prev] must be replaced wholesale. *)
      let entries =
        Array.init (total + 1 - prev) (fun k ->
            { Log.term = 3; index = prev + 1 + k; command = Log.Noop })
      in
      match
        Log.try_append l ~prev_index:prev
          ~prev_term:(term_of ~term_switch prev) ~entries
      with
      | `Ok covered ->
          covered = total + 1
          && Log.last_index l = total + 1
          && Log.snapshot_index l = boundary
          && (* every surviving live entry above the boundary now
                carries the new term *)
          List.for_all
            (fun i ->
              match Log.term_at l i with Some 3 -> true | _ -> i <= boundary)
            (List.init (total + 1) (fun i -> i + 1))
      | `Conflict _ -> false)

let prop_append_wholly_compacted_is_noop =
  Q.Test.make ~count:500
    ~name:"try_append: batch wholly below the boundary leaves the log alone"
    gen_straddle
    (fun (total, term_switch, boundary, prev) ->
      let l = build ~total ~term_switch ~boundary in
      let before_mut = Log.mutations l in
      (* Entries covering only the compacted range: a stale
         retransmission.  It must succeed (it matched once) without
         touching the live tail. *)
      let entries =
        Array.init (boundary - prev) (fun k ->
            let i = prev + 1 + k in
            { Log.term = term_of ~term_switch i; index = i; command = Log.Noop })
      in
      match
        Log.try_append l ~prev_index:prev
          ~prev_term:(term_of ~term_switch prev) ~entries
      with
      | `Ok covered ->
          covered >= boundary
          && Log.last_index l = total
          && Log.mutations l = before_mut
      | `Conflict _ -> false)

let tests =
  [
    Alcotest.test_case "empty log" `Quick test_empty_log;
    Alcotest.test_case "append_new" `Quick test_append_new;
    Alcotest.test_case "try_append: success" `Quick test_try_append_success;
    Alcotest.test_case "try_append: missing prev" `Quick
      test_try_append_missing_prev;
    Alcotest.test_case "try_append: term mismatch" `Quick
      test_try_append_term_mismatch;
    Alcotest.test_case "try_append: truncates conflicts" `Quick
      test_try_append_truncates_conflicts;
    Alcotest.test_case "try_append: idempotent" `Quick
      test_try_append_idempotent;
    Alcotest.test_case "try_append: partial overlap" `Quick
      test_try_append_partial_overlap;
    Alcotest.test_case "try_append: heartbeat (empty)" `Quick
      test_heartbeat_append_empty;
    Alcotest.test_case "slice" `Quick test_slice;
    Alcotest.test_case "up_to_date voting rule" `Quick test_up_to_date;
    to_alcotest prop_append_below_boundary_matches;
    to_alcotest prop_append_conflict_truncates_at_boundary;
    to_alcotest prop_append_wholly_compacted_is_noop;
  ]
