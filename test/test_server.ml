(* Unit tests for the Raft protocol state machine, driven without any
   network: events in, actions out. *)

module Time = Des.Time
module Node_id = Netsim.Node_id
module Server = Raft.Server
module Rpc = Raft.Rpc
module Types = Raft.Types
module Probe = Raft.Probe
module Config = Raft.Config

let nid = Node_id.of_int

let make ?(n = 5) ?(config = Config.static ()) ?(seed = 11L) ~self () =
  let ids = Node_id.range n in
  let peers = List.filter (fun p -> Node_id.to_int p <> self) ids in
  Server.create ~id:(nid self) ~peers ~config
    ~rng:(Stats.Rng.create ~seed ())
    ()

let sends actions =
  List.filter_map
    (function Server.Send { dst; msg; _ } -> Some (dst, msg) | _ -> None)
    actions

let armed_election actions =
  List.filter_map
    (function Server.Arm_election s -> Some s | _ -> None)
    actions

let commits actions =
  List.concat_map
    (function Server.Commit es -> Array.to_list es | _ -> [])
    actions

let heartbeat ?(id = 0) ?(sent_at = Time.zero) ?rtt ~term ~commit () =
  Rpc.Heartbeat
    { term; commit; hb_id = id; sent_at; measured_rtt = rtt; hb_gen = 0 }

let recv server ~from msg ~now =
  Server.handle server ~now (Server.Message { from = nid from; msg })

(* Drive a server to leadership: timeout -> pre-votes granted -> votes
   granted. Returns the actions of the final step. *)
let elect server ~now =
  let acts = Server.handle server ~now Server.Election_timeout_fired in
  let t = Server.term server in
  ignore acts;
  let acts =
    recv server ~from:1
      (Rpc.Vote_response { term = t + 1; granted = true; pre_vote = true })
      ~now
  in
  ignore acts;
  let acts =
    recv server ~from:2
      (Rpc.Vote_response { term = t + 1; granted = true; pre_vote = true })
      ~now
  in
  ignore acts;
  let t = Server.term server in
  let acts =
    recv server ~from:1
      (Rpc.Vote_response { term = t; granted = true; pre_vote = false })
      ~now
  in
  ignore acts;
  recv server ~from:2
    (Rpc.Vote_response { term = t; granted = true; pre_vote = false })
    ~now

let test_start_arms_election () =
  let s = make ~self:0 () in
  let acts = Server.start s in
  match armed_election acts with
  | [ span ] ->
      let et = Time.ms 1000 in
      Alcotest.(check bool) "randomized in [Et, 2Et)" true
        (span >= et && span < 2 * et)
  | _ -> Alcotest.fail "start must arm the election timer once"

let test_randomization_spread () =
  (* Across many draws the randomizedTimeout must cover the [Et, 2Et)
     range, not collapse to a point. *)
  let s = make ~self:0 () in
  let lo = ref max_int and hi = ref 0 in
  for _ = 1 to 200 do
    let acts = Server.handle s ~now:Time.zero Server.Election_timeout_fired in
    List.iter
      (fun span ->
        lo := Stdlib.min !lo span;
        hi := Stdlib.max !hi span)
      (armed_election acts)
  done;
  Alcotest.(check bool) "spread covers most of the range" true
    (!hi - !lo > Time.ms 700)

let test_timeout_starts_prevote () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  let acts = Server.handle s ~now:Time.zero Server.Election_timeout_fired in
  Alcotest.(check bool) "becomes pre-candidate" true
    (Server.role s = Types.Pre_candidate);
  Alcotest.(check int) "term not bumped by pre-vote" 0 (Server.term s);
  let prevotes =
    sends acts
    |> List.filter (fun (_, m) ->
           match m with
           | Rpc.Vote_request { pre_vote = true; term = 1; _ } -> true
           | _ -> false)
  in
  Alcotest.(check int) "pre-vote broadcast to all peers" 4
    (List.length prevotes)

let test_no_prevote_when_disabled () =
  let config = { (Config.static ()) with Config.pre_vote = false } in
  let s = make ~config ~self:0 () in
  ignore (Server.start s);
  ignore (Server.handle s ~now:Time.zero Server.Election_timeout_fired);
  Alcotest.(check bool) "directly candidate" true
    (Server.role s = Types.Candidate);
  Alcotest.(check int) "term bumped" 1 (Server.term s)

let test_prevote_quorum_starts_election () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (Server.handle s ~now:Time.zero Server.Election_timeout_fired);
  ignore
    (recv s ~from:1
       (Rpc.Vote_response { term = 1; granted = true; pre_vote = true })
       ~now:Time.zero);
  Alcotest.(check bool) "still pre-candidate at 2/5" true
    (Server.role s = Types.Pre_candidate);
  ignore
    (recv s ~from:2
       (Rpc.Vote_response { term = 1; granted = true; pre_vote = true })
       ~now:Time.zero);
  Alcotest.(check bool) "candidate at quorum" true
    (Server.role s = Types.Candidate);
  Alcotest.(check int) "term bumped exactly once" 1 (Server.term s)

let test_election_win () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  let acts = elect s ~now:Time.zero in
  Alcotest.(check bool) "leader" true (Server.role s = Types.Leader);
  Alcotest.(check (option int)) "knows itself as leader" (Some 0)
    (Option.map Node_id.to_int (Server.leader s));
  (* The no-op barrier entry is appended. *)
  Alcotest.(check int) "no-op appended" 1 (Raft.Log.last_index (Server.log s));
  (* Appends broadcast on taking office. *)
  let appends =
    sends acts
    |> List.filter (fun (_, m) ->
           match m with Rpc.Append_request _ -> true | _ -> false)
  in
  Alcotest.(check int) "append broadcast" 4 (List.length appends)

let test_duplicate_votes_dont_count () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (Server.handle s ~now:Time.zero Server.Election_timeout_fired);
  (* The same voter granting twice must not reach pre-vote quorum. *)
  for _ = 1 to 5 do
    ignore
      (recv s ~from:1
         (Rpc.Vote_response { term = 1; granted = true; pre_vote = true })
         ~now:Time.zero)
  done;
  Alcotest.(check bool) "still pre-candidate" true
    (Server.role s = Types.Pre_candidate)

let test_vote_granted_once_per_term () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  (* Server 1 asks first and gets the vote... *)
  let acts =
    recv s ~from:1
      (Rpc.Vote_request
         { term = 1; last_log_index = 0; last_log_term = 0; pre_vote = false; force = false })
      ~now:Time.zero
  in
  (match sends acts with
  | [ (_, Rpc.Vote_response { granted; _ }) ] ->
      Alcotest.(check bool) "first request granted" true granted
  | _ -> Alcotest.fail "expected one response");
  (* ...server 2 in the same term is refused. *)
  let acts =
    recv s ~from:2
      (Rpc.Vote_request
         { term = 1; last_log_index = 0; last_log_term = 0; pre_vote = false; force = false })
      ~now:Time.zero
  in
  match sends acts with
  | [ (_, Rpc.Vote_response { granted; _ }) ] ->
      Alcotest.(check bool) "second request refused" false granted
  | _ -> Alcotest.fail "expected one response"

let test_vote_rejected_for_stale_log () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  (* Give the server a log entry at term 2 via an append. *)
  ignore
    (recv s ~from:3
       (Rpc.Append_request
          {
            term = 2;
            prev_index = 0;
            prev_term = 0;
            entries = [| { Raft.Log.term = 2; index = 1; command = Raft.Log.Noop } |];
            commit = 0;
            ar_gen = 0;
          })
       ~now:Time.zero);
  (* Candidate with an older log must be refused even in a newer term.
     (Clear the lease first by timing out.) *)
  ignore (Server.handle s ~now:Time.zero Server.Election_timeout_fired);
  let acts =
    recv s ~from:1
      (Rpc.Vote_request
         { term = 5; last_log_index = 0; last_log_term = 0; pre_vote = false; force = false })
      ~now:Time.zero
  in
  match
    List.filter_map
      (fun (_, m) ->
        match m with
        | Rpc.Vote_response { granted; pre_vote = false; _ } -> Some granted
        | _ -> None)
      (sends acts)
  with
  | [ granted ] -> Alcotest.(check bool) "stale log refused" false granted
  | _ -> Alcotest.fail "expected one vote response"

let test_leader_stickiness_rejects_votes () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  (* Heartbeat installs a leader (and the lease). *)
  ignore
    (recv s ~from:3
       (heartbeat ~term:1 ~commit:0 ())
       ~now:Time.zero);
  let acts =
    recv s ~from:1
      (Rpc.Vote_request
         { term = 2; last_log_index = 5; last_log_term = 1; pre_vote = true; force = false })
      ~now:(Time.ms 1)
  in
  (match sends acts with
  | [ (_, Rpc.Vote_response { granted; _ }) ] ->
      Alcotest.(check bool) "pre-vote refused under lease" false granted
  | _ -> Alcotest.fail "expected one response");
  Alcotest.(check int) "term not disturbed" 1 (Server.term s);
  (* Real vote request is also ignored under the lease. *)
  let acts =
    recv s ~from:1
      (Rpc.Vote_request
         { term = 2; last_log_index = 5; last_log_term = 1; pre_vote = false; force = false })
      ~now:(Time.ms 2)
  in
  (match sends acts with
  | [ (_, Rpc.Vote_response { granted; _ }) ] ->
      Alcotest.(check bool) "vote refused under lease" false granted
  | _ -> Alcotest.fail "expected one response");
  Alcotest.(check int) "term still not adopted" 1 (Server.term s)

let test_heartbeat_rearms_election_timer () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  let acts =
    recv s ~from:3
      (heartbeat ~term:1 ~commit:0 ())
      ~now:Time.zero
  in
  Alcotest.(check bool) "timer re-armed" true (armed_election acts <> []);
  Alcotest.(check (option int)) "leader learned" (Some 3)
    (Option.map Node_id.to_int (Server.leader s))

let test_heartbeat_response_echoes_timestamp () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  let acts =
    recv s ~from:3
      (heartbeat ~id:7 ~sent_at:(Time.ms 123) ~term:1 ~commit:0 ())
      ~now:(Time.ms 150)
  in
  match
    List.filter_map
      (fun (_, m) ->
        match m with
        | Rpc.Heartbeat_response { hb_id; echo_sent_at; _ } ->
            Some (hb_id, echo_sent_at)
        | _ -> None)
      (sends acts)
  with
  | [ (hb_id, echo_sent_at) ] ->
      Alcotest.(check int) "id echoed" 7 hb_id;
      Alcotest.(check int) "timestamp echoed verbatim" (Time.ms 123)
        echo_sent_at
  | _ -> Alcotest.fail "expected one heartbeat response"

let test_pre_candidate_aborts_on_heartbeat () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (Server.handle s ~now:Time.zero Server.Election_timeout_fired);
  Alcotest.(check bool) "pre-candidate" true
    (Server.role s = Types.Pre_candidate);
  let acts =
    recv s ~from:3
      (heartbeat ~term:0 ~commit:0 ())
      ~now:(Time.ms 1)
  in
  Alcotest.(check bool) "reverted to follower" true
    (Server.role s = Types.Follower);
  let aborted =
    List.exists
      (function
        | Server.Probe (Probe.Pre_vote_aborted _) -> true | _ -> false)
      acts
  in
  Alcotest.(check bool) "abort probe emitted" true aborted

let test_step_down_on_higher_term_response () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  Alcotest.(check bool) "leader first" true (Server.role s = Types.Leader);
  ignore
    (recv s ~from:1
       (Rpc.Heartbeat_response
          {
            term = 99;
            hb_id = 0;
            echo_sent_at = Time.zero;
            tuned_h = None;
            hr_gen = 0;
          })
       ~now:(Time.ms 1));
  Alcotest.(check bool) "stepped down" true (Server.role s = Types.Follower);
  Alcotest.(check int) "adopted term" 99 (Server.term s)

let test_leader_replicates_and_commits () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  (* Followers ack the no-op. *)
  let ack from =
    recv s ~from
      (Rpc.Append_response
         {
                term = Server.term s;
                success = true;
                match_index = 1;
                conflict_hint = 0;
                req_prev = 0;
                ap_gen = 0;
              })
      ~now:(Time.ms 1)
  in
  let acts1 = ack 1 in
  Alcotest.(check int) "no commit on first ack (leader+1 < quorum)" 0
    (List.length (commits acts1));
  let acts2 = ack 2 in
  (match commits acts2 with
  | [ e ] -> Alcotest.(check int) "no-op committed at quorum" 1 e.Raft.Log.index
  | _ -> Alcotest.fail "expected the no-op to commit");
  Alcotest.(check int) "commit index" 1 (Server.commit_index s)

let test_leader_propose_and_flush () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  (* Catch followers up on the no-op first. *)
  List.iter
    (fun from ->
      ignore
        (recv s ~from
           (Rpc.Append_response
              {
                term = Server.term s;
                success = true;
                match_index = 1;
                conflict_hint = 0;
                req_prev = 0;
                ap_gen = 0;
              })
           ~now:(Time.ms 1)))
    [ 1; 2; 3; 4 ];
  let acts =
    Server.handle s ~now:(Time.ms 2)
      (Server.Propose { payload = "p"; client_id = 9; seq = 1 })
  in
  Alcotest.(check bool) "flush requested" true
    (List.exists (function Server.Request_flush -> true | _ -> false) acts);
  let acts = Server.handle s ~now:(Time.ms 3) Server.Flush_due in
  let appends =
    sends acts
    |> List.filter_map (fun (_, m) ->
           match m with
           | Rpc.Append_request { entries; _ } -> Some (Array.length entries)
           | _ -> None)
  in
  Alcotest.(check (list int)) "entry shipped to all followers" [ 1; 1; 1; 1 ]
    appends

let test_follower_rejects_stale_append () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore
    (recv s ~from:3
       (heartbeat ~term:5 ~commit:0 ())
       ~now:Time.zero);
  let acts =
    recv s ~from:1
      (Rpc.Append_request
         {
           term = 2;
           prev_index = 0;
           prev_term = 0;
           entries = [||];
           commit = 0;
           ar_gen = 0;
         })
      ~now:(Time.ms 1)
  in
  match sends acts with
  | [ (_, Rpc.Append_response { success; term; _ }) ] ->
      Alcotest.(check bool) "refused" false success;
      Alcotest.(check int) "carries current term" 5 term
  | _ -> Alcotest.fail "expected one append response"

let test_follower_commit_via_heartbeat () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore
    (recv s ~from:3
       (Rpc.Append_request
          {
            term = 1;
            prev_index = 0;
            prev_term = 0;
            entries = [| { Raft.Log.term = 1; index = 1; command = Raft.Log.Noop } |];
            commit = 0;
            ar_gen = 0;
          })
       ~now:Time.zero);
  Alcotest.(check int) "not committed yet" 0 (Server.commit_index s);
  let acts =
    recv s ~from:3
      (heartbeat ~id:1 ~term:1 ~commit:1 ())
      ~now:(Time.ms 10)
  in
  Alcotest.(check int) "committed via heartbeat" 1 (Server.commit_index s);
  Alcotest.(check int) "commit action carries the entry" 1
    (List.length (commits acts))

let test_conflict_backoff () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  let term = Server.term s in
  (* Follower 1 reports a conflict; leader must retry from the hint. *)
  let acts =
    recv s ~from:1
      (Rpc.Append_response
         {
           term;
           success = false;
           match_index = 0;
           conflict_hint = 1;
           req_prev = 0;
           ap_gen = 0;
         })
      ~now:(Time.ms 1)
  in
  let retries =
    sends acts
    |> List.filter_map (fun (dst, m) ->
           match m with
           | Rpc.Append_request { prev_index; _ } when Node_id.to_int dst = 1 ->
               Some prev_index
           | _ -> None)
  in
  Alcotest.(check (list int)) "retries from hint - 1" [ 0 ] retries

let dynatune_config () = Config.dynatune ()

let test_dynatune_follower_piggybacks_h () =
  let cfg =
    Config.dynatune
      ~cfg:{ Dynatune.Config.default with Dynatune.Config.min_list_size = 2 }
      ()
  in
  let s = make ~config:cfg ~self:0 () in
  ignore (Server.start s);
  let hb i rtt now =
    recv s ~from:3 (heartbeat ~id:i ~sent_at:now ?rtt ~term:1 ~commit:0 ()) ~now
  in
  (* While warming, no h is piggybacked. *)
  let acts = hb 0 None Time.zero in
  (match
     List.filter_map
       (fun (_, m) ->
         match m with
         | Rpc.Heartbeat_response { tuned_h; _ } -> Some tuned_h
         | _ -> None)
       (sends acts)
   with
  | [ None ] -> ()
  | _ -> Alcotest.fail "no h expected while warming");
  (* Two RTT samples warm the tuner (min_list_size = 2). *)
  ignore (hb 1 (Some (Time.ms 50)) (Time.ms 100));
  let acts = hb 2 (Some (Time.ms 50)) (Time.ms 200) in
  match
    List.filter_map
      (fun (_, m) ->
        match m with
        | Rpc.Heartbeat_response { tuned_h; _ } -> Some tuned_h
        | _ -> None)
      (sends acts)
  with
  | [ Some h ] ->
      Alcotest.(check int) "tuned h = Et (K=1, zero variance, no loss)"
        (Time.ms 50) h
  | _ -> Alcotest.fail "expected a piggybacked h"

let test_dynatune_timeout_resets_tuner () =
  let cfg =
    Config.dynatune
      ~cfg:{ Dynatune.Config.default with Dynatune.Config.min_list_size = 2 }
      ()
  in
  let s = make ~config:cfg ~self:0 () in
  ignore (Server.start s);
  let hb i rtt now =
    ignore
      (recv s ~from:3
         (heartbeat ~id:i ~sent_at:now ?rtt ~term:1 ~commit:0 ())
         ~now)
  in
  hb 0 None Time.zero;
  hb 1 (Some (Time.ms 50)) (Time.ms 100);
  hb 2 (Some (Time.ms 50)) (Time.ms 200);
  Alcotest.(check int) "tuned Et" (Time.ms 50) (Server.election_timeout_now s);
  let acts = Server.handle s ~now:(Time.ms 400) Server.Election_timeout_fired in
  Alcotest.(check bool) "tuner reset probe" true
    (List.exists
       (function Server.Probe (Probe.Tuner_reset _) -> true | _ -> false)
       acts);
  Alcotest.(check int) "fallback to default Et" (Time.ms 1000)
    (Server.election_timeout_now s);
  (* The re-armed timer must use the default range again. *)
  match armed_election acts with
  | [ span ] ->
      Alcotest.(check bool) "randomized from defaults" true
        (span >= Time.ms 1000 && span < Time.ms 2000)
  | _ -> Alcotest.fail "expected a re-arm"

let test_leader_applies_piggybacked_h () =
  let s = make ~config:(dynatune_config ()) ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  ignore
    (recv s ~from:1
       (Rpc.Heartbeat_response
          {
            term = Server.term s;
            hb_id = 0;
            echo_sent_at = Time.zero;
            tuned_h = Some (Time.ms 33);
            hr_gen = 0;
          })
       ~now:(Time.ms 10));
  Alcotest.(check (option int)) "interval applied toward that follower"
    (Some (Time.ms 33))
    (Server.heartbeat_interval_to s (nid 1));
  Alcotest.(check (option int)) "other followers unchanged"
    (Some (Time.ms 100))
    (Server.heartbeat_interval_to s (nid 2))

let test_static_leader_uses_broadcast_timer () =
  let s = make ~config:(Config.static ()) ~self:0 () in
  ignore (Server.start s);
  let acts = elect s ~now:Time.zero in
  Alcotest.(check bool) "broadcast timer armed" true
    (List.exists
       (function Server.Arm_broadcast _ -> true | _ -> false)
       acts);
  let acts = Server.handle s ~now:(Time.ms 100) Server.Broadcast_due in
  let hbs =
    sends acts
    |> List.filter (fun (_, m) ->
           match m with Rpc.Heartbeat _ -> true | _ -> false)
  in
  Alcotest.(check int) "heartbeats to all followers" 4 (List.length hbs)

let test_dynatune_leader_uses_per_peer_timers () =
  let s = make ~config:(dynatune_config ()) ~self:0 () in
  ignore (Server.start s);
  let acts = elect s ~now:Time.zero in
  let armed =
    List.filter_map
      (function
        | Server.Arm_heartbeat { peer; _ } -> Some (Node_id.to_int peer)
        | _ -> None)
      acts
  in
  Alcotest.(check (list int)) "one timer per follower" [ 1; 2; 3; 4 ]
    (List.sort compare armed)

(* {2 Replication engine v2: pipelining window and stale nacks} *)

let test_progress_window () =
  let module P = Raft.Progress in
  let pr = P.create ~last_index:0 in
  (* Probing: strictly one append at a time, whatever the window. *)
  Alcotest.(check bool) "probe allowed" true (P.may_send pr ~window:4);
  P.record_sent pr ~upto:2;
  Alcotest.(check int) "next advanced optimistically" 3 (P.next_index pr);
  Alcotest.(check bool) "probing serializes" false (P.may_send pr ~window:4);
  (* The first success opens the pipeline. *)
  P.record_success pr ~upto:2;
  Alcotest.(check int) "ack retires the send" 0 (P.inflight pr);
  P.record_sent pr ~upto:4;
  P.record_sent pr ~upto:6;
  P.record_sent pr ~upto:8;
  Alcotest.(check int) "three in flight" 3 (P.inflight pr);
  Alcotest.(check bool) "window open" true (P.may_send pr ~window:4);
  P.record_sent pr ~upto:10;
  Alcotest.(check bool) "window full" false (P.may_send pr ~window:4);
  (* A current conflict rewinds and forgets the whole window. *)
  (match P.record_conflict_response pr ~req_prev:2 ~hint:3 with
  | `Rewound -> ()
  | `Stale -> Alcotest.fail "current nack must rewind");
  Alcotest.(check int) "next rewound to hint" 3 (P.next_index pr);
  Alcotest.(check int) "window forgotten" 0 (P.inflight pr);
  (* A nack answering a send from before the rewind is stale: its
     position lies beyond the rewound [next]. *)
  P.record_sent pr ~upto:4;
  (match P.record_conflict_response pr ~req_prev:6 ~hint:1 with
  | `Stale -> ()
  | `Rewound -> Alcotest.fail "superseded nack must be dropped");
  Alcotest.(check int) "stale nack leaves next alone" 5 (P.next_index pr)

let appends_to actions ~dst =
  List.filter_map
    (function
      | Server.Send { dst = d; msg = Rpc.Append_request r; _ }
        when Node_id.equal d (nid dst) ->
          Some r
      | _ -> None)
    actions

let test_stale_nack_no_duplicate_resend () =
  (* One-entry batches keep every send's position distinct, so the
     rewound probe's [next] sits below the stale nack's position. *)
  let config =
    Config.with_replication ~max_entries_per_append:1 (Config.static ())
  in
  let s = make ~self:0 ~config () in
  ignore (Server.start s);
  let now = Time.ms 100 in
  let acts = elect s ~now in
  (match appends_to acts ~dst:1 with
  | [ probe ] -> Alcotest.(check int) "initial probe at 0" 0 probe.Rpc.prev_index
  | _ -> Alcotest.fail "leader must probe each follower once");
  (* Peer 1 acks the noop: replicating, caught up. *)
  let ack =
    Rpc.Append_response
      {
        term = 1;
        success = true;
        match_index = 1;
        conflict_hint = 0;
        req_prev = 0;
        ap_gen = 0;
      }
  in
  ignore (recv s ~from:1 ack ~now);
  (* Two proposals stream out as two pipelined one-entry appends. *)
  ignore
    (Server.handle s ~now (Server.Propose { payload = "a"; client_id = 9; seq = 1 }));
  ignore
    (Server.handle s ~now (Server.Propose { payload = "b"; client_id = 9; seq = 2 }));
  let acts = Server.handle s ~now Server.Flush_due in
  Alcotest.(check int) "two appends in flight" 2
    (List.length (appends_to acts ~dst:1));
  (* The first nack is current: exactly one resend (the rewound probe),
     not one per outstanding send. *)
  let nack ~req_prev =
    Rpc.Append_response
      {
        term = 1;
        success = false;
        match_index = 0;
        conflict_hint = 1;
        req_prev;
        ap_gen = 0;
      }
  in
  let acts = recv s ~from:1 (nack ~req_prev:1) ~now in
  (match appends_to acts ~dst:1 with
  | [ probe ] -> Alcotest.(check int) "rewound probe at 0" 0 probe.Rpc.prev_index
  | l ->
      Alcotest.failf "conflict must resend exactly one probe, got %d"
        (List.length l));
  (* The second outstanding send's nack is now stale: no resend at all
     (or the leader would re-append the same entries forever). *)
  let acts = recv s ~from:1 (nack ~req_prev:2) ~now in
  Alcotest.(check int) "stale nack resends nothing" 0
    (List.length (appends_to acts ~dst:1));
  (* The surviving probe's ack reopens the stream where it left off. *)
  let acts = recv s ~from:1 ack ~now in
  Alcotest.(check int) "pipeline resumes after ack" 2
    (List.length (appends_to acts ~dst:1))

let test_backpressure_throttles_stream () =
  (* With a congested egress the leader sends nothing in bulk; when the
     queue drains below the limit the stream resumes. *)
  let config =
    Config.with_replication ~max_entries_per_append:1 ~append_backpressure:2
      (Config.static ())
  in
  let s = make ~self:0 ~config () in
  ignore (Server.start s);
  let now = Time.ms 100 in
  ignore (elect s ~now);
  let depth = ref 10 in
  Server.set_congestion_probe s (fun _ -> !depth);
  let ack =
    Rpc.Append_response
      {
        term = 1;
        success = true;
        match_index = 1;
        conflict_hint = 0;
        req_prev = 0;
        ap_gen = 0;
      }
  in
  ignore (recv s ~from:1 ack ~now);
  ignore
    (Server.handle s ~now (Server.Propose { payload = "a"; client_id = 9; seq = 1 }));
  let acts = Server.handle s ~now Server.Flush_due in
  Alcotest.(check int) "congested egress sends nothing" 0
    (List.length (appends_to acts ~dst:1));
  depth := 0;
  let acts = Server.handle s ~now Server.Flush_due in
  Alcotest.(check int) "drained egress resumes" 1
    (List.length (appends_to acts ~dst:1))

let tests =
  [
    Alcotest.test_case "start arms election" `Quick test_start_arms_election;
    Alcotest.test_case "randomization spreads over [Et,2Et)" `Quick
      test_randomization_spread;
    Alcotest.test_case "timeout starts pre-vote" `Quick
      test_timeout_starts_prevote;
    Alcotest.test_case "pre-vote can be disabled" `Quick
      test_no_prevote_when_disabled;
    Alcotest.test_case "pre-vote quorum starts election" `Quick
      test_prevote_quorum_starts_election;
    Alcotest.test_case "election win" `Quick test_election_win;
    Alcotest.test_case "duplicate votes don't count" `Quick
      test_duplicate_votes_dont_count;
    Alcotest.test_case "one vote per term" `Quick test_vote_granted_once_per_term;
    Alcotest.test_case "stale log refused" `Quick test_vote_rejected_for_stale_log;
    Alcotest.test_case "leader stickiness" `Quick
      test_leader_stickiness_rejects_votes;
    Alcotest.test_case "heartbeat re-arms timer" `Quick
      test_heartbeat_rearms_election_timer;
    Alcotest.test_case "heartbeat echo" `Quick
      test_heartbeat_response_echoes_timestamp;
    Alcotest.test_case "pre-candidate aborts on leader contact" `Quick
      test_pre_candidate_aborts_on_heartbeat;
    Alcotest.test_case "step down on higher term" `Quick
      test_step_down_on_higher_term_response;
    Alcotest.test_case "replicate and commit at quorum" `Quick
      test_leader_replicates_and_commits;
    Alcotest.test_case "propose batches via flush" `Quick
      test_leader_propose_and_flush;
    Alcotest.test_case "stale append refused" `Quick
      test_follower_rejects_stale_append;
    Alcotest.test_case "commit via heartbeat" `Quick
      test_follower_commit_via_heartbeat;
    Alcotest.test_case "conflict backoff" `Quick test_conflict_backoff;
    Alcotest.test_case "dynatune: follower piggybacks h" `Quick
      test_dynatune_follower_piggybacks_h;
    Alcotest.test_case "dynatune: timeout resets tuner" `Quick
      test_dynatune_timeout_resets_tuner;
    Alcotest.test_case "dynatune: leader applies h" `Quick
      test_leader_applies_piggybacked_h;
    Alcotest.test_case "static leader broadcast timer" `Quick
      test_static_leader_uses_broadcast_timer;
    Alcotest.test_case "dynatune per-peer timers" `Quick
      test_dynatune_leader_uses_per_peer_timers;
    Alcotest.test_case "progress window semantics" `Quick test_progress_window;
    Alcotest.test_case "stale nack is not resent" `Quick
      test_stale_nack_no_duplicate_resend;
    Alcotest.test_case "backpressure throttles the stream" `Quick
      test_backpressure_throttles_stream;
  ]
