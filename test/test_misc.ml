(* Coverage for the remaining public surfaces: Rpc rendering, cost
   model accounting, config validation, report/workload printers, and
   small stats/des corners not exercised elsewhere. *)

module Time = Des.Time

let asprintf = Format.asprintf

(* {2 Types / Rpc} *)

let test_role_helpers () =
  Alcotest.(check bool) "leader" true (Raft.Types.is_leader Raft.Types.Leader);
  List.iter
    (fun r -> Alcotest.(check bool) "not leader" false (Raft.Types.is_leader r))
    [ Raft.Types.Follower; Raft.Types.Pre_candidate; Raft.Types.Candidate ];
  Alcotest.(check string) "names" "pre-candidate"
    (Raft.Types.role_name Raft.Types.Pre_candidate)

let all_messages : Raft.Rpc.message list =
  [
    Raft.Rpc.Vote_request
      { term = 1; last_log_index = 2; last_log_term = 1; pre_vote = true; force = false };
    Raft.Rpc.Vote_request
      { term = 1; last_log_index = 2; last_log_term = 1; pre_vote = false; force = false };
    Raft.Rpc.Vote_response { term = 1; granted = true; pre_vote = true };
    Raft.Rpc.Vote_response { term = 1; granted = false; pre_vote = false };
    Raft.Rpc.Append_request
      {
        term = 1;
        prev_index = 0;
        prev_term = 0;
        entries = [||];
        commit = 0;
        ar_gen = 0;
      };
    Raft.Rpc.Append_response
      {
        term = 1;
        success = true;
        match_index = 4;
        conflict_hint = 0;
        req_prev = 0;
        ap_gen = 0;
      };
    Raft.Rpc.Heartbeat
      {
        term = 1;
        commit = 0;
        hb_id = 3;
        sent_at = 0;
        measured_rtt = None;
        hb_gen = 0;
      };
    Raft.Rpc.Heartbeat_response
      { term = 1; hb_id = 3; echo_sent_at = 0; tuned_h = None; hr_gen = 0 };
  ]

let test_rpc_kind_names () =
  let names = List.map Raft.Rpc.kind_name all_messages in
  Alcotest.(check (list string)) "tags"
    [
      "prevote_req"; "vote_req"; "prevote_resp"; "vote_resp"; "append_req";
      "append_resp"; "hb"; "hb_resp";
    ]
    names

let test_rpc_pp_total () =
  List.iter
    (fun m ->
      let rendered = asprintf "%a" Raft.Rpc.pp m in
      Alcotest.(check bool) "non-empty rendering" true
        (String.length rendered > 3))
    all_messages

let test_probe_pp_total () =
  let id = Netsim.Node_id.of_int 2 in
  List.iter
    (fun p ->
      Alcotest.(check bool) "non-empty" true
        (String.length (asprintf "%a" Raft.Probe.pp p) > 2))
    [
      Raft.Probe.Role_change { id; role = Raft.Types.Leader; term = 3 };
      Raft.Probe.Timeout_expired { id; term = 3; randomized = Time.ms 120 };
      Raft.Probe.Tuner_decision
        {
          id;
          rtt_ms = 99.4;
          rtt_std_ms = 1.2;
          loss = 0.01;
          k = 2;
          et = Time.ms 140;
          h = Time.ms 60;
          reason = Raft.Probe.Warmed;
        };
      Raft.Probe.Pre_vote_aborted { id; term = 3 };
      Raft.Probe.Tuner_reset { id };
      Raft.Probe.Election_started { id; term = 4 };
      Raft.Probe.Node_paused { id };
      Raft.Probe.Node_resumed { id };
    ]

(* {2 Cost model} *)

let test_cost_model_zero_is_free () =
  List.iter
    (fun m ->
      Alcotest.(check int) "recv free" 0
        (Raft.Cost_model.message_recv_cost Raft.Cost_model.zero
           ~tuning_active:true m);
      Alcotest.(check int) "send free" 0
        (Raft.Cost_model.message_send_cost Raft.Cost_model.zero
           ~tuning_active:true m))
    all_messages

let test_cost_model_tuning_surcharge () =
  let c = Raft.Cost_model.etcd_like in
  let hb =
    Raft.Rpc.Heartbeat
      {
        term = 1;
        commit = 0;
        hb_id = 3;
        sent_at = 0;
        measured_rtt = None;
        hb_gen = 0;
      }
  in
  let base = Raft.Cost_model.message_recv_cost c ~tuning_active:false hb in
  let tuned = Raft.Cost_model.message_recv_cost c ~tuning_active:true hb in
  Alcotest.(check int) "tuning surcharge"
    c.Raft.Cost_model.tuning_overhead (tuned - base);
  (* Appends are not surcharged: tuning works on heartbeats only. *)
  let ap =
    Raft.Rpc.Append_request
      {
        term = 1;
        prev_index = 0;
        prev_term = 0;
        entries = [||];
        commit = 0;
        ar_gen = 0;
      }
  in
  Alcotest.(check int) "append unaffected"
    (Raft.Cost_model.message_recv_cost c ~tuning_active:false ap)
    (Raft.Cost_model.message_recv_cost c ~tuning_active:true ap)

let test_cost_model_per_entry () =
  let c = Raft.Cost_model.etcd_like in
  let entry i = { Raft.Log.term = 1; index = i; command = Raft.Log.Noop } in
  let ap n =
    Raft.Rpc.Append_request
      {
        term = 1;
        prev_index = 0;
        prev_term = 0;
        entries = Array.init n (fun i -> entry (i + 1));
        commit = 0;
        ar_gen = 0;
      }
  in
  let cost n =
    Raft.Cost_model.message_send_cost c ~tuning_active:false (ap n)
  in
  Alcotest.(check int) "linear in entries"
    (10 * c.Raft.Cost_model.append_entry)
    (cost 10 - cost 0)

(* {2 Raft.Config} *)

let test_config_validation () =
  let bad =
    {
      (Raft.Config.static ()) with
      Raft.Config.heartbeat_interval = Time.ms 1000;
      election_timeout = Time.ms 1000;
    }
  in
  (match Raft.Config.validate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "h >= Et must be rejected");
  match Raft.Config.validate (Raft.Config.dynatune ()) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "dynatune default invalid: %s" m

let test_config_mode_names () =
  Alcotest.(check string) "raft" "raft"
    (Raft.Config.mode_name (Raft.Config.static ()));
  Alcotest.(check string) "raft-low" "raft-low"
    (Raft.Config.mode_name (Raft.Config.raft_low ()));
  Alcotest.(check string) "dynatune" "dynatune"
    (Raft.Config.mode_name (Raft.Config.dynatune ()));
  Alcotest.(check string) "fix-k" "fix-k"
    (Raft.Config.mode_name (Raft.Config.fix_k ~k:10 ()))

let test_config_fix_k_rejects_nonpositive () =
  Alcotest.(check bool) "k=0 rejected" true
    (try
       ignore (Raft.Config.fix_k ~k:0 ());
       false
     with Invalid_argument _ -> true)

let test_config_bases () =
  let d = Raft.Config.dynatune () in
  Alcotest.(check int) "dynatune base Et is the fallback" (Time.ms 1000)
    (Raft.Config.election_timeout_base d);
  Alcotest.(check int) "dynatune base h is the fallback" (Time.ms 100)
    (Raft.Config.heartbeat_interval_base d);
  let low = Raft.Config.raft_low () in
  Alcotest.(check int) "raft-low base" (Time.ms 100)
    (Raft.Config.election_timeout_base low)

(* {2 Report} *)

let test_report_float_cell () =
  Alcotest.(check string) "nan renders as dash" "-"
    (String.trim (Scenarios.Report.float_cell nan));
  Alcotest.(check string) "number" "12.3"
    (String.trim (Scenarios.Report.float_cell 12.34))

let test_report_renders () =
  let s = Stats.Summary.of_list [ 1.; 2.; 3. ] in
  let out =
    asprintf "%a"
      (fun ppf () ->
        Scenarios.Report.banner ppf "Title";
        Scenarios.Report.subhead ppf "sub";
        Scenarios.Report.kv ppf "key" "value";
        Scenarios.Report.summary_row ppf ~label:"lbl" s;
        Scenarios.Report.cdf_table ppf ~label:"p" ~series:[ ("a", s) ]
          ~points:4;
        Scenarios.Report.series_table ppf ~time_label:"t"
          ~columns:[ ("c1", [ (0., 1.); (1., 2.) ]) ];
        Scenarios.Report.intervals ppf ~label:"gaps"
          [ (Time.sec 1, Time.sec 2) ])
      ()
  in
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle))
    [ "Title"; "sub"; "key"; "lbl"; "gaps" ]

(* Columns sampled at different instants still line up: a column with
   no point at a row's instant renders [-] in its own cell.  Indexing
   cells by row position (the old bug) paired unrelated instants. *)
let test_report_series_table_ragged () =
  let out =
    asprintf "%a"
      (fun ppf () ->
        Scenarios.Report.series_table ppf ~time_label:"t"
          ~columns:
            [
              ("left", [ (0., 1.); (10., 2.) ]);
              ("right", [ (0., 5.); (5., 6.); (10., 7.) ]);
            ])
      ()
  in
  let lines =
    String.split_on_char '\n' out
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           String.split_on_char ' ' l |> List.filter (fun w -> w <> ""))
  in
  Alcotest.(check (list (list string)))
    "rows are the union of instants; gaps render as -"
    [
      [ "t"; "left"; "right" ];
      [ "0"; "1.0"; "5.0" ];
      [ "5"; "-"; "6.0" ];
      [ "10"; "2.0"; "7.0" ];
    ]
    lines

(* {2 Workload} *)

let test_workload_empty () =
  Alcotest.(check (float 1e-9)) "empty peak" 0.
    (Kvsm.Workload.peak_throughput []);
  Alcotest.(check bool) "no saturation" true
    (Kvsm.Workload.saturation_rate [] = None)

(* {2 Time formatting} *)

let test_time_pp () =
  Alcotest.(check string) "seconds" "1.500s" (asprintf "%a" Time.pp (Time.of_ms_f 1500.));
  Alcotest.(check string) "milliseconds" "237.1ms"
    (asprintf "%a" Time.pp_ms (Time.of_ms_f 237.1))

(* {2 Dist corners} *)

let test_pareto_bounds () =
  let rng = Stats.Rng.create ~seed:71L () in
  for _ = 1 to 5000 do
    let v = Stats.Dist.pareto rng ~scale:2. ~shape:1.5 in
    if v < 2. then Alcotest.failf "pareto below scale: %f" v
  done;
  Alcotest.(check bool) "invalid scale rejected" true
    (try
       ignore (Stats.Dist.pareto rng ~scale:0. ~shape:1.);
       false
     with Invalid_argument _ -> true)

let test_poisson_zero_mean () =
  let rng = Stats.Rng.create ~seed:73L () in
  Alcotest.(check int) "mean 0 -> 0" 0 (Stats.Dist.poisson rng ~mean:0.)

(* {2 Server misc} *)

let test_server_rejects_self_peer () =
  let id = Netsim.Node_id.of_int 0 in
  Alcotest.(check bool) "self in peers rejected" true
    (try
       ignore
         (Raft.Server.create ~id ~peers:[ id ] ~config:(Raft.Config.static ())
            ~rng:(Stats.Rng.create ()) ());
       false
     with Invalid_argument _ -> true)

let test_single_node_cluster_self_elects () =
  let s =
    Raft.Server.create
      ~id:(Netsim.Node_id.of_int 0)
      ~peers:[] ~config:(Raft.Config.static ())
      ~rng:(Stats.Rng.create ~seed:5L ())
      ()
  in
  ignore (Raft.Server.start s);
  ignore (Raft.Server.handle s ~now:Time.zero Raft.Server.Election_timeout_fired);
  Alcotest.(check bool) "instant self-election" true
    (Raft.Types.is_leader (Raft.Server.role s));
  (* Proposals commit without any network. *)
  let acts =
    Raft.Server.handle s ~now:(Time.ms 1)
      (Raft.Server.Propose { payload = "p"; client_id = 1; seq = 1 })
  in
  let committed =
    List.exists
      (function
        | Raft.Server.Commit es -> Array.length es > 0
        | _ -> false)
      acts
  in
  Alcotest.(check bool) "commits alone" true committed

let tests =
  [
    Alcotest.test_case "types: role helpers" `Quick test_role_helpers;
    Alcotest.test_case "rpc: kind names" `Quick test_rpc_kind_names;
    Alcotest.test_case "rpc: pp total" `Quick test_rpc_pp_total;
    Alcotest.test_case "probe: pp total" `Quick test_probe_pp_total;
    Alcotest.test_case "cost: zero is free" `Quick test_cost_model_zero_is_free;
    Alcotest.test_case "cost: tuning surcharge" `Quick
      test_cost_model_tuning_surcharge;
    Alcotest.test_case "cost: per-entry" `Quick test_cost_model_per_entry;
    Alcotest.test_case "config: validation" `Quick test_config_validation;
    Alcotest.test_case "config: mode names" `Quick test_config_mode_names;
    Alcotest.test_case "config: fix_k bounds" `Quick
      test_config_fix_k_rejects_nonpositive;
    Alcotest.test_case "config: base parameters" `Quick test_config_bases;
    Alcotest.test_case "report: float cell" `Quick test_report_float_cell;
    Alcotest.test_case "report: renders" `Quick test_report_renders;
    Alcotest.test_case "report: ragged series table" `Quick
      test_report_series_table_ragged;
    Alcotest.test_case "workload: empty" `Quick test_workload_empty;
    Alcotest.test_case "time: pp" `Quick test_time_pp;
    Alcotest.test_case "dist: pareto" `Quick test_pareto_bounds;
    Alcotest.test_case "dist: poisson zero" `Quick test_poisson_zero_mean;
    Alcotest.test_case "server: rejects self peer" `Quick
      test_server_rejects_self_peer;
    Alcotest.test_case "server: single-node self-election" `Quick
      test_single_node_cluster_self_elects;
  ]
