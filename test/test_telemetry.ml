(* Observability layer: metrics registry semantics, shard-merge
   determinism (the [--jobs] bit-identity contract), and the Chrome
   trace-event exporter (golden file + JSON shape). *)

module Metrics = Telemetry.Metrics
module Chrome = Telemetry.Chrome_trace
module Time = Des.Time

(* {2 Registry} *)

let test_registry_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~scope:"s" ~name:"hits" () in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.Counter.value c);
  let g = Metrics.gauge m ~scope:"s" ~name:"depth" () in
  Metrics.Gauge.set g 2.;
  Metrics.Gauge.set_max g 7.;
  Metrics.Gauge.set_max g 3.;
  Alcotest.(check (float 0.)) "gauge keeps max" 7. (Metrics.Gauge.value g);
  let t =
    Metrics.timer m ~scope:"s" ~name:"lat_ms" ~lo:0. ~hi:10. ~bins:10 ()
  in
  Metrics.Timer.observe_ms t 1.5;
  Metrics.Timer.observe_ms t 2.5;
  let snap = Metrics.snapshot m in
  Alcotest.(check int) "three keys" 3 (List.length snap);
  List.iter
    (fun (key, value) ->
      match (Metrics.key_label key, value) with
      | "s/hits", Metrics.Count n -> Alcotest.(check int) "count" 5 n
      | "s/depth", Metrics.Level v ->
          Alcotest.(check (float 0.)) "level" 7. v
      | "s/lat_ms", Metrics.Series h ->
          Alcotest.(check int) "samples" 2 (Stats.Histogram.count h)
      | label, _ -> Alcotest.failf "unexpected entry %s" label)
    snap

let test_registry_find_or_create () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~scope:"s" ~name:"n" ~node:"n0" () in
  let b = Metrics.counter m ~scope:"s" ~name:"n" ~node:"n0" () in
  Metrics.Counter.incr a;
  Metrics.Counter.incr b;
  (* Same key: both handles alias one cell. *)
  Alcotest.(check int) "shared cell" 2 (Metrics.Counter.value a);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Metrics: s/n@n0 already registered with a different kind (gauge)")
    (fun () -> ignore (Metrics.gauge m ~scope:"s" ~name:"n" ~node:"n0" ()))

let test_registry_disabled () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "disabled" false (Metrics.enabled m);
      let c = Metrics.counter m ~scope:"s" ~name:"c" () in
      Metrics.Counter.incr c;
      Metrics.Counter.add c 10;
      Alcotest.(check int) "dead counter stays 0" 0 (Metrics.Counter.value c);
      let g = Metrics.gauge m ~scope:"s" ~name:"g" () in
      Metrics.Gauge.set g 9.;
      let t =
        Metrics.timer m ~scope:"s" ~name:"t" ~lo:0. ~hi:1. ~bins:2 ()
      in
      Metrics.Timer.observe_ms t 0.5;
      Alcotest.(check int) "empty snapshot" 0
        (List.length (Metrics.snapshot m)))
    [ Metrics.noop; Metrics.create ~enabled:false () ]

(* {2 Merge} *)

(* Two shards each record part of the workload; their merged snapshots
   must equal a single registry that saw everything — the same
   [Summary.of_parts] shape the campaign runner relies on. *)
let test_merge_equals_combined () =
  let record m ~hits ~depth ~obs =
    let c = Metrics.counter m ~scope:"s" ~name:"hits" () in
    Metrics.Counter.add c hits;
    let g = Metrics.gauge m ~scope:"s" ~name:"depth" () in
    Metrics.Gauge.set_max g depth;
    let t =
      Metrics.timer m ~scope:"s" ~name:"lat_ms" ~lo:0. ~hi:10. ~bins:10 ()
    in
    List.iter (Metrics.Timer.observe_ms t) obs
  in
  let s1 = Metrics.create () and s2 = Metrics.create () in
  record s1 ~hits:3 ~depth:5. ~obs:[ 1.; 2. ];
  record s2 ~hits:4 ~depth:2. ~obs:[ 3. ];
  let whole = Metrics.create () in
  record whole ~hits:3 ~depth:5. ~obs:[ 1.; 2. ];
  record whole ~hits:4 ~depth:2. ~obs:[ 3. ];
  Alcotest.(check string) "merge = combined"
    (Metrics.to_json (Metrics.snapshot whole))
    (Metrics.to_json (Metrics.merge [ Metrics.snapshot s1; Metrics.snapshot s2 ]));
  (* Associativity: left and right folds agree. *)
  let s3 = Metrics.create () in
  record s3 ~hits:1 ~depth:9. ~obs:[];
  let parts = List.map Metrics.snapshot [ s1; s2; s3 ] in
  Alcotest.(check string) "associative"
    (Metrics.to_json (Metrics.merge parts))
    (Metrics.to_json
       (Metrics.merge
          [ Metrics.merge [ List.nth parts 0; List.nth parts 1 ];
            List.nth parts 2 ]))

let test_merge_kind_mismatch () =
  let a = Metrics.create () and b = Metrics.create () in
  ignore (Metrics.counter a ~scope:"s" ~name:"x" ());
  let g = Metrics.gauge b ~scope:"s" ~name:"x" () in
  Metrics.Gauge.set g 1.;
  match Metrics.merge [ Metrics.snapshot a; Metrics.snapshot b ] with
  | _ -> Alcotest.fail "merge accepted mismatched kinds"
  | exception Invalid_argument _ -> ()

(* {2 Campaign determinism} *)

(* The acceptance criterion behind [bench --json]: with the shard plan
   pinned, the merged metrics snapshot is a function of the seed alone —
   byte-identical whatever [--jobs] says. *)
let test_fig4_metrics_jobs_invariant () =
  let run jobs =
    let r =
      Scenarios.Fig4.run ~seed:11L ~failures:6 ~shards:4 ~jobs
        ~instrument:true
        ~config:(Raft.Config.dynatune ())
        ()
    in
    Metrics.to_json r.Scenarios.Fig4.metrics
  in
  let j1 = run 1 in
  Alcotest.(check bool) "snapshot non-trivial" true (String.length j1 > 100);
  Alcotest.(check string) "jobs 1 = jobs 4" j1 (run 4)

let test_fig4_uninstrumented_is_empty () =
  let r =
    Scenarios.Fig4.run ~seed:11L ~failures:2 ~shards:2 ~jobs:1
      ~config:(Raft.Config.dynatune ())
      ()
  in
  Alcotest.(check int) "no metrics" 0
    (List.length r.Scenarios.Fig4.metrics)

(* {2 Chrome trace exporter} *)

(* A fixed event sequence exercising every record type and the string
   escaper; the golden file pins the exact bytes Perfetto receives. *)
let sample_trace () =
  let s = Chrome.create () in
  Chrome.process_name s ~pid:1 "cluster";
  Chrome.thread_name s ~pid:1 ~tid:0 "n0";
  Chrome.duration_begin s ~name:"campaign" ~pid:1 ~tid:0 ~at:(Time.ms 5)
    ~args:[ ("term", Chrome.Int 2) ]
    ();
  Chrome.instant s ~name:"tuner_decision" ~pid:1 ~tid:0
    ~at:(Time.us 5500)
    ~args:
      [
        ("reason", Chrome.Str "warmed");
        ("loss", Chrome.Float 0.012);
        ("pre_vote", Chrome.Bool true);
        ("bad", Chrome.Float nan);
      ]
    ();
  Chrome.duration_end s ~name:"campaign" ~pid:1 ~tid:0 ~at:(Time.ms 7) ();
  Chrome.counter s ~name:"fabric" ~pid:1 ~tid:0 ~at:(Time.ms 7)
    ~values:[ ("sent", 12.); ("lost", 1.) ]
    ();
  Chrome.instant s ~name:{|quote " back \ newline
tab	end|} ~pid:1 ~tid:0 ~at:(Time.ms 8) ();
  s

let test_chrome_golden () =
  let golden_path = "golden/chrome_trace.golden.json" in
  let golden =
    let ic = open_in_bin golden_path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let s = sample_trace () in
  Alcotest.(check int) "event count" 7 (Chrome.event_count s);
  Alcotest.(check string) "golden bytes" golden (Chrome.to_string s)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_chrome_shape () =
  let out = Chrome.to_string (sample_trace ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (contains ~needle out))
    [
      {|{"traceEvents": [|};
      {|"ph": "B"|};
      {|"ph": "E"|};
      {|"ph": "i"|};
      {|"ph": "C"|};
      {|"ph": "M"|};
      (* instants are thread-scoped *)
      {|"s": "t"|};
      (* microsecond timestamps with sub-us precision *)
      {|"ts": 5000.000|};
      {|"ts": 5500.000|};
      (* non-finite args degrade to null, never to invalid JSON *)
      {|"bad": null|};
      (* escaper output *)
      {|quote \" back \\ newline\ntab\tend|};
      {|"displayTimeUnit": "ms"|};
    ]

(* The UTF-8 audit: well-formed multi-byte sequences pass through
   verbatim (JSON is UTF-8), malformed bytes — stray continuations,
   truncated sequences, overlongs, surrogate encodings, out-of-range
   leads — each become one U+FFFD escape instead of corrupting the
   file. *)
let escaped name =
  let s = Chrome.create () in
  Chrome.instant s ~name ~pid:1 ~tid:0 ~at:(Time.ms 1) ();
  Chrome.to_string s

let test_chrome_utf8 () =
  let check_escape label input expected =
    Alcotest.(check bool) label true (contains ~needle:expected (escaped input))
  in
  (* valid sequences pass through byte-for-byte *)
  check_escape "2-byte (é)" "caf\xC3\xA9" "caf\xC3\xA9";
  check_escape "3-byte (東)" "\xE6\x9D\xB1" "\xE6\x9D\xB1";
  check_escape "4-byte (𝄞)" "\xF0\x9D\x84\x9E" "\xF0\x9D\x84\x9E";
  check_escape "control char inside UTF-8" "\xC3\xA9\x01" "\xC3\xA9\\u0001";
  (* malformed bytes each degrade to a replacement escape *)
  check_escape "stray continuation" "a\x80b" "a\\ufffdb";
  check_escape "truncated 2-byte lead" "a\xC3" "a\\ufffd";
  check_escape "truncated 3-byte" "\xE6\x9D" "\\ufffd\\ufffd";
  check_escape "overlong lead 0xC0" "\xC0\xAF" "\\ufffd\\ufffd";
  check_escape "overlong 3-byte" "\xE0\x80\xA0" "\\ufffd\\ufffd\\ufffd";
  check_escape "UTF-16 surrogate (ED A0 80)" "\xED\xA0\x80"
    "\\ufffd\\ufffd\\ufffd";
  check_escape "above U+10FFFF (F4 90)" "\xF4\x90\x80\x80"
    "\\ufffd\\ufffd\\ufffd\\ufffd";
  check_escape "never-a-lead 0xF5" "\xF5" "\\ufffd";
  check_escape "never-a-lead 0xFF" "\xFF" "\\ufffd";
  (* the result is parseable JSON-ish: every quote in it is escaped or
     structural — cheap sanity via an even quote count *)
  let out = escaped "\xC3\xA9 \x80 \"q\"" in
  let quotes = String.fold_left (fun n c -> if c = '"' then n + 1 else n) 0 out in
  Alcotest.(check int) "balanced quotes" 0 (quotes mod 2)

let test_chrome_write () =
  let path = Filename.temp_file "chrome_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let s = sample_trace () in
      Chrome.write s path;
      let ic = open_in_bin path in
      let body =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "write = to_string" (Chrome.to_string s) body)

let tests =
  [
    Alcotest.test_case "registry: basics" `Quick test_registry_basics;
    Alcotest.test_case "registry: find-or-create" `Quick
      test_registry_find_or_create;
    Alcotest.test_case "registry: disabled inert" `Quick
      test_registry_disabled;
    Alcotest.test_case "merge: equals combined" `Quick
      test_merge_equals_combined;
    Alcotest.test_case "merge: kind mismatch" `Quick test_merge_kind_mismatch;
    Alcotest.test_case "fig4: metrics jobs-invariant" `Quick
      test_fig4_metrics_jobs_invariant;
    Alcotest.test_case "fig4: uninstrumented empty" `Quick
      test_fig4_uninstrumented_is_empty;
    Alcotest.test_case "chrome: golden file" `Quick test_chrome_golden;
    Alcotest.test_case "chrome: JSON shape" `Quick test_chrome_shape;
    Alcotest.test_case "chrome: UTF-8 escaping" `Quick test_chrome_utf8;
    Alcotest.test_case "chrome: write" `Quick test_chrome_write;
  ]
