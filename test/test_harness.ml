(* Tests for the experiment harness: cluster, fault injection, monitors,
   congestion, geo matrix and scenario smoke runs. *)

module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Monitor = Harness.Monitor
module Time = Des.Time

let lan ?(rtt_ms = 10.) () =
  Netsim.Conditions.(constant (profile ~rtt_ms ~jitter:0.02 ()))

let make ?(seed = 17L) ?(n = 5) ?(config = Raft.Config.static ()) () =
  let c = Cluster.create ~seed ~n ~config ~conditions:(lan ()) () in
  Cluster.start c;
  c

(* {2 Cluster} *)

let test_cluster_shape () =
  let c = make ~n:7 () in
  Alcotest.(check int) "size" 7 (Cluster.size c);
  Alcotest.(check int) "quorum" 4 (Cluster.quorum c);
  Alcotest.(check int) "nodes listed" 7 (List.length (Cluster.nodes c));
  Alcotest.(check bool) "unknown id raises" true
    (try
       ignore (Cluster.node c (Netsim.Node_id.of_int 99));
       false
     with Invalid_argument _ -> true)

let test_cluster_rejects_empty () =
  Alcotest.(check bool) "n=0 rejected" true
    (try
       ignore (Cluster.create ~n:0 ~config:(Raft.Config.static ()) ());
       false
     with Invalid_argument _ -> true)

let test_await_leader_times_out_without_quorum () =
  let c = make ~n:3 () in
  List.iter (fun id -> Fault.pause c id) (Cluster.node_ids c);
  Alcotest.(check bool) "no leader from a fully paused cluster" true
    (Cluster.await_leader c ~timeout:(Time.sec 5) = None)

let test_submit_without_leader () =
  let c = make () in
  (* Before any election completes there is no leader. *)
  match
    Cluster.submit_target c ~payload:"x" ~client_id:1 ~seq:1
      ~on_result:(fun ~committed:_ -> ())
  with
  | `Not_leader None -> ()
  | `Not_leader (Some _) -> Alcotest.fail "no leader should be known yet"
  | `Accepted -> Alcotest.fail "nothing should accept yet"

(* {2 Fault} *)

let test_kill_leader_returns_id () =
  let c = make () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let before = Option.get (Cluster.leader c) in
  match Fault.kill_leader c with
  | Some (id, _) ->
      Alcotest.(check int) "killed the current leader"
        (Netsim.Node_id.to_int (Raft.Node.id before))
        (Netsim.Node_id.to_int id);
      Alcotest.(check bool) "paused" true (Raft.Node.is_paused before)
  | None -> Alcotest.fail "expected a leader to kill"

let test_kill_leader_none_when_leaderless () =
  let c = make () in
  Alcotest.(check bool) "nothing to kill at t=0" true
    (Fault.kill_leader c = None)

let test_fail_and_measure_outcome_sanity () =
  let c = make () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  match Fault.fail_and_measure c () with
  | Error msg -> Alcotest.fail msg
  | Ok o ->
      Alcotest.(check bool) "majority detection >= first detection" true
        (o.Fault.majority_detection_ms >= o.Fault.detection_ms);
      Alcotest.(check bool) "ots covers detection" true
        (o.Fault.ots_ms >= o.Fault.detection_ms);
      Alcotest.(check bool) "at least one election round" true
        (o.Fault.election_rounds >= 1);
      Alcotest.(check bool) "old leader recovered" false
        (Raft.Node.is_paused (Cluster.node c o.Fault.failed))

let test_repeated_failovers_stay_healthy () =
  let c = make ~config:(Raft.Config.dynatune ()) () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  for i = 1 to 5 do
    match Fault.fail_and_measure c () with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "iteration %d failed: %s" i msg
  done

(* {2 Monitor} *)

let test_monitor_randomized_sampling () =
  let c = make () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let values = Monitor.randomized_timeouts_ms c in
  Alcotest.(check int) "one sample per follower" 4 (List.length values);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%.0f in [Et, 2Et)" v)
        true
        (v >= 1000. && v < 2000.))
    values;
  let majority =
    match Monitor.majority_randomized_ms c with
    | Some v -> v
    | None -> Alcotest.fail "majority randomized timeout unavailable"
  in
  let sorted = List.sort compare values in
  Alcotest.(check (float 1e-9)) "majority = (f+1)-th smallest"
    (List.nth sorted 2) majority

let test_monitor_watch_sample_count () =
  let c = make () in
  let series =
    Monitor.watch c ~every:(Time.sec 1) ~duration:(Time.sec 10)
      ~probes:[ { Monitor.name = "const"; read = (fun _ -> 42.) } ]
  in
  match series with
  | [ ("const", ts) ] ->
      Alcotest.(check int) "ten samples" 10 (Stats.Timeseries.length ts);
      List.iter
        (fun (_, v) -> Alcotest.(check (float 1e-9)) "value" 42. v)
        (Stats.Timeseries.points ts)
  | _ -> Alcotest.fail "expected one series"

let test_monitor_leaderless_intervals () =
  let c = make () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  Cluster.run_for c (Time.sec 5);
  let t0 = Cluster.now c in
  (* Kill the leader without clearing the trace; measure the gap. *)
  (match Fault.kill_leader c with Some _ -> () | None -> Alcotest.fail "no leader");
  (match Cluster.await_leader c ~timeout:(Time.sec 30) with
  | Some _ -> ()
  | None -> Alcotest.fail "no recovery");
  Cluster.run_for c (Time.sec 2);
  let until = Cluster.now c in
  let intervals = Monitor.leaderless_intervals c ~from:t0 ~until in
  Alcotest.(check int) "exactly one gap" 1 (List.length intervals);
  let ots = Monitor.total_ots_ms c ~from:t0 ~until in
  Alcotest.(check bool)
    (Printf.sprintf "gap %.0fms plausible" ots)
    true
    (ots > 100. && ots < 10_000.)

let test_monitor_no_ots_in_steady_state () =
  let c = make () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let t0 = Cluster.now c in
  Cluster.run_for c (Time.sec 30);
  Alcotest.(check (float 1e-6)) "zero OTS" 0.
    (Monitor.total_ots_ms c ~from:t0 ~until:(Cluster.now c))

(* {2 Congestion} *)

let test_congestion_episodes () =
  let rng = Stats.Rng.create ~seed:3L () in
  let spec =
    Netsim.Congestion.spec ~mean_gap:(Time.ms 500) ~extra_lo:(Time.ms 100)
      ~extra_hi:(Time.ms 200) ~duration:(Time.ms 100) ()
  in
  let c = Netsim.Congestion.create ~rng spec in
  let in_episode = ref 0 and out_of_episode = ref 0 in
  for i = 0 to 100_000 do
    let extra = Netsim.Congestion.extra_delay c ~now:(Time.ms i) in
    if extra > 0 then begin
      incr in_episode;
      if extra < Time.ms 100 || extra > Time.ms 200 then
        Alcotest.failf "extra %d outside bounds" extra
    end
    else incr out_of_episode
  done;
  let frac = float_of_int !in_episode /. 100_000. in
  (* Episodes of 100ms every ~600ms (gap + duration): expect ~1/6 of
     time congested. *)
  Alcotest.(check bool)
    (Printf.sprintf "congested fraction %.3f near 1/6" frac)
    true
    (frac > 0.10 && frac < 0.25)

let test_congestion_spec_validation () =
  List.iter
    (fun f ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (f ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> Netsim.Congestion.spec ~mean_gap:0 ());
      (fun () ->
        Netsim.Congestion.spec ~mean_gap:(Time.sec 1) ~extra_lo:(Time.ms 10)
          ~extra_hi:(Time.ms 5) ());
      (fun () -> Netsim.Congestion.spec ~mean_gap:(Time.sec 1) ~duration:0 ());
    ]

let test_congestion_delays_delivery () =
  let engine = Des.Engine.create ~seed:2L () in
  let fabric : string Netsim.Fabric.t = Netsim.Fabric.create engine in
  let a = Netsim.Node_id.of_int 0 and b = Netsim.Node_id.of_int 1 in
  Netsim.Fabric.add_node fabric a;
  Netsim.Fabric.add_node fabric b;
  Netsim.Fabric.set_uniform_conditions fabric
    Netsim.Conditions.(constant (profile ~rtt_ms:10. ()));
  (* An always-on congestion process: first episode starts immediately
     in expectation terms; force it by a tiny mean gap and long duration. *)
  Netsim.Fabric.set_egress_congestion fabric a
    (Netsim.Congestion.spec ~mean_gap:(Time.ms 1) ~extra_lo:(Time.ms 300)
       ~extra_hi:(Time.ms 300) ~duration:(Time.sec 3600) ());
  Des.Engine.run_until engine (Time.sec 1);
  let arrival = ref Time.zero in
  Netsim.Fabric.set_handler fabric b (fun ~src:_ _ ->
      arrival := Des.Engine.now engine);
  Netsim.Fabric.send fabric Netsim.Transport.Datagram ~src:a ~dst:b "x";
  Des.Engine.run engine;
  Alcotest.(check int) "delayed by the episode extra"
    (Time.sec 1 + Time.ms 305) !arrival

(* {2 Geo} *)

let test_geo_matrix_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check (float 1e-9)) "symmetric"
            (Scenarios.Geo.rtt_ms a b) (Scenarios.Geo.rtt_ms b a))
        Scenarios.Geo.regions)
    Scenarios.Geo.regions

let test_geo_requires_five_nodes () =
  let c = make ~n:3 () in
  Alcotest.(check bool) "rejects n=3" true
    (try
       Scenarios.Geo.apply c ();
       false
     with Invalid_argument _ -> true)

let test_geo_longest_path_sydney_saopaulo () =
  let worst =
    List.concat_map
      (fun a -> List.map (fun b -> ((a, b), Scenarios.Geo.rtt_ms a b)) Scenarios.Geo.regions)
      Scenarios.Geo.regions
    |> List.fold_left (fun (p, m) (q, v) -> if v > m then (q, v) else (p, m))
         ((Scenarios.Geo.Tokyo, Scenarios.Geo.Tokyo), 0.)
  in
  match worst with
  | ((a, b), _) ->
      let names = List.sort compare [ Scenarios.Geo.name a; Scenarios.Geo.name b ] in
      Alcotest.(check (list string)) "worst path" [ "sao-paulo"; "sydney" ] names

(* {2 Scenario smoke runs (tiny parameters)} *)

let test_fig4_smoke () =
  let r =
    Scenarios.Fig4.run ~seed:1L ~failures:3 ~warmup:(Time.sec 10)
      ~config:(Raft.Config.static ()) ()
  in
  Alcotest.(check int) "three failovers measured" 3 r.Scenarios.Fig4.failures;
  Alcotest.(check bool) "detection in a plausible band" true
    (Stats.Summary.mean r.Scenarios.Fig4.detection > 500.
    && Stats.Summary.mean r.Scenarios.Fig4.detection < 2500.)

let test_fig6_radical_smoke () =
  let r =
    Scenarios.Fig6.run ~seed:1L ~hold:(Time.sec 5)
      ~pattern:Scenarios.Fig6.Radical ~config:(Raft.Config.dynatune ()) ()
  in
  Alcotest.(check bool) "sampled" true (List.length r.Scenarios.Fig6.majority_timeout > 5);
  Alcotest.(check string) "mode" "dynatune" r.Scenarios.Fig6.mode

let test_fig7_smoke () =
  let r =
    Scenarios.Fig7.run ~seed:1L ~hold:(Time.sec 2) ~n:3
      ~config:(Raft.Config.fix_k ~k:10 ()) ()
  in
  Alcotest.(check string) "mode" "fix-k" r.Scenarios.Fig7.mode;
  Alcotest.(check int) "n recorded" 3 r.Scenarios.Fig7.n;
  Alcotest.(check int) "no unnecessary elections" 0 r.Scenarios.Fig7.elections

let test_extensions_variants () =
  let vs = Scenarios.Extensions.variants () in
  Alcotest.(check int) "four variants" 4 (List.length vs);
  List.iter
    (fun v ->
      match Raft.Config.validate v.Scenarios.Extensions.config with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s invalid: %s" v.Scenarios.Extensions.label m)
    vs

let tests =
  [
    Alcotest.test_case "cluster: shape" `Quick test_cluster_shape;
    Alcotest.test_case "cluster: rejects n=0" `Quick test_cluster_rejects_empty;
    Alcotest.test_case "cluster: await without quorum" `Quick
      test_await_leader_times_out_without_quorum;
    Alcotest.test_case "cluster: submit without leader" `Quick
      test_submit_without_leader;
    Alcotest.test_case "fault: kill leader" `Quick test_kill_leader_returns_id;
    Alcotest.test_case "fault: kill without leader" `Quick
      test_kill_leader_none_when_leaderless;
    Alcotest.test_case "fault: outcome sanity" `Quick
      test_fail_and_measure_outcome_sanity;
    Alcotest.test_case "fault: repeated failovers" `Quick
      test_repeated_failovers_stay_healthy;
    Alcotest.test_case "monitor: randomized sampling" `Quick
      test_monitor_randomized_sampling;
    Alcotest.test_case "monitor: watch sample count" `Quick
      test_monitor_watch_sample_count;
    Alcotest.test_case "monitor: leaderless intervals" `Quick
      test_monitor_leaderless_intervals;
    Alcotest.test_case "monitor: steady state has no OTS" `Quick
      test_monitor_no_ots_in_steady_state;
    Alcotest.test_case "congestion: episode process" `Quick
      test_congestion_episodes;
    Alcotest.test_case "congestion: spec validation" `Quick
      test_congestion_spec_validation;
    Alcotest.test_case "congestion: delays delivery" `Quick
      test_congestion_delays_delivery;
    Alcotest.test_case "geo: symmetric matrix" `Quick test_geo_matrix_symmetric;
    Alcotest.test_case "geo: requires 5 nodes" `Quick test_geo_requires_five_nodes;
    Alcotest.test_case "geo: worst path" `Quick
      test_geo_longest_path_sydney_saopaulo;
    Alcotest.test_case "scenario smoke: fig4" `Slow test_fig4_smoke;
    Alcotest.test_case "scenario smoke: fig6b" `Slow test_fig6_radical_smoke;
    Alcotest.test_case "scenario smoke: fig7" `Slow test_fig7_smoke;
    Alcotest.test_case "extensions: variants valid" `Quick
      test_extensions_variants;
  ]
