(* Chaos testing: randomized fault schedules (pauses, crashes,
   partitions, congestion) driven against a live cluster, checking the
   safety properties Raft must never violate:

   - election safety: at most one leader per term;
   - durability: every acknowledged (committed) write survives to the
     final converged state;
   - convergence: after all faults heal, every replica reaches the same
     state. *)

module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Time = Des.Time
module Node_id = Netsim.Node_id

type tracked_write = { key : string; mutable committed : bool }

let lan () =
  Netsim.Conditions.(constant (profile ~rtt_ms:20. ~jitter:0.1 ~loss:0.01 ()))

(* One chaos episode: [steps] random actions against an [n]-node cluster;
   returns the acknowledged writes for the final durability check. *)
let run_chaos ~seed ~config ~steps =
  let n = 5 in
  let c =
    Cluster.create ~seed ~n ~config ~conditions:(lan ()) ~check:Check.Always ()
  in
  Cluster.start c;
  let rng = Stats.Rng.create ~seed:(Int64.add seed 1000L) () in
  let ids = Array.of_list (Cluster.node_ids c) in
  let paused : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let writes = ref [] in
  let seq = ref 0 in
  let live_count () = n - Hashtbl.length paused in
  let random_node () = ids.(Stats.Rng.int rng n) in
  let submit_writes k =
    for _ = 1 to k do
      incr seq;
      let w = { key = Printf.sprintf "chaos:%d" !seq; committed = false } in
      writes := w :: !writes;
      match
        Cluster.submit_target c
          ~payload:
            (Kvsm.Command.to_payload
               (Kvsm.Command.Put { key = w.key; value = "x" }))
          ~client_id:7 ~seq:!seq
          ~on_result:(fun ~committed -> if committed then w.committed <- true)
      with
      | `Accepted | `Not_leader _ -> ()
    done
  in
  let step () =
    match Stats.Rng.int rng 8 with
    | 0 when live_count () > n / 2 + 1 ->
        (* Pause someone, but never break quorum permanently. *)
        let id = random_node () in
        if not (Hashtbl.mem paused (Node_id.to_int id)) then begin
          Fault.pause c id;
          Hashtbl.add paused (Node_id.to_int id) ()
        end
    | 1 -> (
        (* Resume a random paused node. *)
        match Hashtbl.fold (fun k () _ -> Some k) paused None with
        | Some k ->
            Fault.recover c (Node_id.of_int k);
            Hashtbl.remove paused k
        | None -> ())
    | 2 when live_count () > n / 2 + 1 ->
        let id = random_node () in
        if not (Hashtbl.mem paused (Node_id.to_int id)) then
          Fault.crash_and_restart c id
            ~downtime:(Time.ms (50 + Stats.Rng.int rng 2000))
    | 3 ->
        (* Random partition: 1-2 nodes split off. *)
        let k = 1 + Stats.Rng.int rng 2 in
        let shuffled = Array.copy ids in
        Stats.Rng.shuffle rng shuffled;
        let side = Array.to_list (Array.sub shuffled 0 k) in
        Cluster.partition c [ side ]
    | 4 -> Cluster.heal_partition c
    | 5 | 6 -> submit_writes (1 + Stats.Rng.int rng 5)
    | _ -> () (* just let time pass *)
  in
  for _ = 1 to steps do
    step ();
    Cluster.run_for c (Time.ms (100 + Stats.Rng.int rng 3000))
  done;
  (* Heal everything and let the cluster converge. *)
  Cluster.heal_partition c;
  Hashtbl.iter (fun k () -> Fault.recover c (Node_id.of_int k)) paused;
  Hashtbl.reset paused;
  Cluster.run_for c (Time.sec 30);
  (match Cluster.await_leader c ~timeout:(Time.sec 60) with
  | Some _ -> ()
  | None -> Alcotest.fail "cluster never recovered from the chaos schedule");
  Cluster.run_for c (Time.sec 10);
  (c, List.rev !writes)

let check_election_safety c =
  let leaders_by_term = Hashtbl.create 64 in
  Des.Mtrace.iter (Cluster.trace c) ~f:(fun _ probe ->
      match probe with
      | Raft.Probe.Role_change { id; role = Raft.Types.Leader; term } -> (
          match Hashtbl.find_opt leaders_by_term term with
          | Some other when not (Node_id.equal other id) ->
              Alcotest.failf "two leaders in term %d: %a and %a" term
                Node_id.pp other Node_id.pp id
          | Some _ | None -> Hashtbl.replace leaders_by_term term id)
      | _ -> ())

let check_convergence c =
  let digests =
    List.map (fun id -> Kvsm.Store.state_digest (Cluster.store c id))
      (Cluster.node_ids c)
  in
  match digests with
  | d :: rest ->
      List.iteri
        (fun i d' ->
          Alcotest.(check string) (Printf.sprintf "replica %d converged" i) d d')
        rest
  | [] -> Alcotest.fail "no stores"

let check_durability c writes =
  let store =
    match Cluster.leader c with
    | Some l -> Cluster.store c (Raft.Node.id l)
    | None -> Alcotest.fail "no leader for the durability check"
  in
  let acked = List.filter (fun w -> w.committed) writes in
  List.iter
    (fun w ->
      match Kvsm.Store.find store w.key with
      | Some _ -> ()
      | None -> Alcotest.failf "acknowledged write %s was lost" w.key)
    acked;
  acked

let chaos_case ~config ~seed () =
  let c, writes = run_chaos ~seed ~config ~steps:40 in
  check_election_safety c;
  check_convergence c;
  let acked = check_durability c writes in
  (* The schedule keeps quorum most of the time: a healthy fraction of
     writes must actually have been acknowledged, or the test is
     vacuous. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d writes acknowledged" (List.length acked)
       (List.length writes))
    true
    (List.length writes = 0 || List.length acked > 0)

let tests =
  [
    Alcotest.test_case "chaos: static raft, seed 1" `Slow
      (chaos_case ~config:(Raft.Config.static ()) ~seed:1L);
    Alcotest.test_case "chaos: static raft, seed 2" `Slow
      (chaos_case ~config:(Raft.Config.static ()) ~seed:2L);
    Alcotest.test_case "chaos: dynatune, seed 3" `Slow
      (chaos_case ~config:(Raft.Config.dynatune ()) ~seed:3L);
    Alcotest.test_case "chaos: dynatune, seed 4" `Slow
      (chaos_case ~config:(Raft.Config.dynatune ()) ~seed:4L);
    Alcotest.test_case "chaos: dynatune + snapshots, seed 5" `Slow
      (chaos_case
         ~config:(Raft.Config.with_snapshots ~threshold:15 (Raft.Config.dynatune ()))
         ~seed:5L);
    Alcotest.test_case "chaos: extensions + snapshots, seed 6" `Slow
      (chaos_case
         ~config:
           (Raft.Config.with_snapshots ~threshold:10
              (Raft.Config.with_extensions ~suppress_heartbeats_under_load:true
                 ~consolidated_timer:true (Raft.Config.dynatune ())))
         ~seed:6L);
  ]
