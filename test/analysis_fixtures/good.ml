(* Analyzer self-test fixture: near-misses that must NOT fire, even
   though this file is analyzed under a virtual lib/raft/ path (taint
   entry domain). *)

type msg2 = Stop | Go [@@protocol]
type plain = Red | Green | Blue

(* A wildcard over an unmarked variant type is fine... *)
let color_code = function Red -> 0 | _ -> 1

(* ...and an exhaustive match over a protocol type is the sanctioned
   shape. *)
let full = function Stop -> 0 | Go -> 1

(* A guarded catch-all does not hide protocol growth: removing it (or
   adding a variant) re-exposes warning 8. *)
let guarded c = match c with Stop -> 0 | g when g = Go -> 1 | Go -> 2

(* Functions returning fresh mutable state are fine; only top-level
   allocations are shared. *)
let fresh_table () : (string, int) Hashtbl.t = Hashtbl.create 16

let bump () =
  let local = ref 0 in
  incr local;
  !local

(* Names that merely look like effects are not effects. *)
let gettimeofday = 3
let render x = Printf.sprintf "%d" x

(* Immutable top-level data is fine. *)
let constant = 42
let digits = [ 3; 1; 4 ]
let helper x = constant + x
