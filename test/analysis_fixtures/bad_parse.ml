(* Analyzer self-test fixture: a file the frontend cannot parse must
   surface as a parse-error finding, never be skipped silently. *)

let = let in (
