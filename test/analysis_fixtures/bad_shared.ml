(* Analyzer self-test fixture: cross-domain shared state.  The
   [Pool.map] call site below hands [work] to other domains, which
   makes this whole module domain-reachable — so its top-level mutable
   values (a hash table, a ref, a mutable-field record, an array) must
   all be flagged. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 16
let hits = ref 0

type cell = { mutable count : int; tag : string }

let shared_cell = { count = 0; tag = "shared" }
let scratch = Array.make 8 0

let work shard =
  Hashtbl.length table + !hits + shared_cell.count + scratch.(0) + shard

let run pool shards = Pool.map pool work shards
