(* Analyzer self-test fixture: effect taint through local wrappers.
   Never compiled — parsed by [analyze --self-test] under a virtual
   lib/raft/ path, so every value here is a taint entry point.  The
   banned effects hide behind one and two levels of wrapping; the
   line/token lint would only see the direct lines, the taint pass
   must also walk [stamp] and [doubly_wrapped] to them. *)

(* wall clock, direct and wrapped *)
let now () = Unix.gettimeofday ()
let stamp () = now () +. 1.
let doubly_wrapped () = stamp () *. 2.

(* global Random behind a helper *)
let jitter () = Random.float 1.0
let jittered x = x +. jitter ()

(* ambient Sys *)
let home () = Sys.getenv "HOME"

(* ambient I/O *)
let log_line s = print_endline s
