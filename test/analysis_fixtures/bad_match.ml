(* Analyzer self-test fixture: protocol-match exhaustiveness.  [msg]
   is marked [@@protocol]; any match naming its constructors with a
   catch-all arm must be flagged, including a catch-all over a wrapped
   scrutinee. *)

type msg = Ping | Pong | Payload of int [@@protocol]

let to_int = function Ping -> 0 | Pong -> 1 | Payload n -> n
let swallow = function Ping -> 0 | _ -> 1

let nested m = match Some m with Some Pong -> 1 | _ -> 0
