(* Tests for the multiraft layer: group manager shape, shard routing and
   cross-group isolation, leader-hint caching and refresh, group-scoped
   metrics, the [shard_of_key] partition properties, and the sweep's
   jobs-invariance. *)

module Q = QCheck
module Gm = Multiraft.Group_manager
module Router = Multiraft.Router
module Cluster = Harness.Cluster

let to_alcotest = QCheck_alcotest.to_alcotest
let lan = Netsim.Conditions.(constant (profile ~rtt_ms:10. ~jitter:0.02 ()))

let make ?(seed = 21L) ?check ?telemetry ?(groups = 3) ?(replicas = 3) () =
  let m =
    Gm.create ~seed ~conditions:lan ?check ?telemetry ~groups ~replicas
      ~config:(Raft.Config.dynatune ())
      ()
  in
  Gm.start m;
  Alcotest.(check bool)
    "every group elected" true
    (Gm.await_leaders m ~timeout:(Des.Time.sec 30));
  m

(* {2 Manager shape} *)

let test_manager_shape () =
  let m =
    Gm.create ~seed:3L ~groups:4 ~replicas:3
      ~config:(Raft.Config.dynatune ())
      ()
  in
  Alcotest.(check int) "group count" 4 (Gm.group_count m);
  Alcotest.(check int) "replicas" 3 (Gm.replicas m);
  Alcotest.(check int) "node base of g2" 6 (Gm.node_base m 2);
  Alcotest.(check int)
    "id 7 belongs to g2" 2
    (Gm.group_of_node m (Netsim.Node_id.of_int 7));
  Alcotest.(check int) "group size" 3 (Cluster.size (Gm.group m 1));
  Alcotest.(check bool) "out-of-range group raises" true
    (try
       ignore (Gm.group m 4);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "foreign node id raises" true
    (try
       ignore (Gm.group_of_node m (Netsim.Node_id.of_int 12) : int);
       false
     with Invalid_argument _ -> true)

let test_manager_rejects_empty () =
  Alcotest.(check bool) "groups=0 rejected" true
    (try
       ignore
         (Gm.create ~groups:0 ~replicas:3 ~config:(Raft.Config.dynatune ()) ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "replicas=0 rejected" true
    (try
       ignore
         (Gm.create ~groups:2 ~replicas:0 ~config:(Raft.Config.dynatune ()) ());
       false
     with Invalid_argument _ -> true)

(* {2 Shard routing and cross-group isolation} *)

(* Every written key lands in exactly the store of the group
   [shard_of_key] names — and in no other group's store. *)
let test_routing_isolation () =
  let m = make ~seed:31L ~groups:3 () in
  let router = Router.create m in
  let keys = List.init 30 (fun i -> Printf.sprintf "iso:%d" i) in
  List.iteri
    (fun i key ->
      ignore
        (Router.dispatch router
           (Router.Write { key; value = "v" ^ key })
           ~client_id:1 ~seq:(i + 1)
           ~on_result:(fun (_ : Router.response) -> ())
          : Kvsm.Client.submit_result);
      Gm.run_for m (Des.Time.ms 5))
    keys;
  Gm.run_for m (Des.Time.sec 3);
  List.iter
    (fun key ->
      let home = Router.shard_of_key ~groups:3 key in
      Gm.iter_groups m (fun g cluster ->
          List.iter
            (fun id ->
              let found = Kvsm.Store.find (Cluster.store cluster id) key in
              if g = home then
                Alcotest.(check (option string))
                  (Printf.sprintf "%s present in its group" key)
                  (Some ("v" ^ key)) found
              else
                Alcotest.(check (option string))
                  (Printf.sprintf "%s absent from group %d" key g)
                  None found)
            (Cluster.node_ids cluster)))
    keys

let test_leader_distribution_sums () =
  let m = make ~seed:33L ~groups:5 () in
  let dist = Gm.leader_distribution m in
  Alcotest.(check int) "slots" 3 (Array.length dist);
  Alcotest.(check int)
    "one leader per group" 5
    (Array.fold_left ( + ) 0 dist);
  Alcotest.(check int) "no group leaderless" 0 (Gm.leaderless m)

(* {2 Router hint cache} *)

let test_hint_learned_and_refreshed () =
  let m = make ~seed:37L ~groups:2 () in
  let router = Router.create m in
  let key = "hint:k" in
  let g = Router.group_of_key router key in
  Alcotest.(check bool) "cold cache" true
    (match Router.hint router g with None -> true | Some _ -> false);
  let committed = ref false in
  ignore
    (Router.dispatch router
       (Router.Write { key; value = "v1" })
       ~client_id:2 ~seq:1
       ~on_result:(fun r ->
         match r with Router.Committed -> committed := true | _ -> ())
      : Kvsm.Client.submit_result);
  Gm.run_for m (Des.Time.sec 2);
  Alcotest.(check bool) "first write committed" true !committed;
  let cluster = Gm.group m g in
  let old_leader =
    match Cluster.leader cluster with
    | Some l -> l
    | None -> Alcotest.fail "group lost its leader"
  in
  Alcotest.(check bool) "hint learned the leader" true
    (match Router.hint router g with
    | Some id -> Netsim.Node_id.equal id (Raft.Node.id old_leader)
    | None -> false);
  (* Depose the hinted leader.  The stale hint answers [`Not_leader]
     (with whatever that node believes), which the router installs; the
     deposed node may well win the leadership back once resumed, so the
     contract under churn is only: refreshes are recorded, and once a
     write commits again the hint names the leader that took it. *)
  Raft.Node.pause old_leader;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> Alcotest.fail "no successor elected");
  Raft.Node.resume old_leader;
  (* Leadership can flap for a few seconds while the deposed node
     rejoins (it may even win the term back); let it settle so the
     post-failover assertions are about a stable regime. *)
  Gm.run_for m (Des.Time.sec 15);
  let committed_again = ref false in
  let seq = ref 1 in
  while (not !committed_again) && !seq < 10 do
    incr seq;
    ignore
      (Router.dispatch router
         (Router.Write { key; value = "v2" })
         ~client_id:2 ~seq:!seq
         ~on_result:(fun r ->
           match r with Router.Committed -> committed_again := true | _ -> ())
        : Kvsm.Client.submit_result);
    Gm.run_for m (Des.Time.sec 1)
  done;
  Alcotest.(check bool) "a write committed after failover" true
    !committed_again;
  Alcotest.(check bool) "refresh recorded" true
    (Router.hint_refreshes router >= 1);
  (* Leadership may keep moving (the deposed node can win terms back),
     so the stable contract is only that the cache stays warm: the node
     that took the committed write is hinted. *)
  Alcotest.(check bool) "hint warm after recovery" true
    (match Router.hint router g with Some _ -> true | None -> false)

(* {2 Front-door protocol} *)

let test_dispatch_protocol () =
  let m = make ~seed:41L ~groups:2 () in
  let router = Router.create m in
  let wrote = ref false and read_hit = ref None and read_miss = ref None in
  ignore
    (Router.dispatch router
       (Router.Write { key = "proto:k"; value = "42" })
       ~client_id:3 ~seq:1
       ~on_result:(fun r ->
         match r with Router.Committed -> wrote := true | _ -> ())
      : Kvsm.Client.submit_result);
  Gm.run_for m (Des.Time.sec 2);
  ignore
    (Router.dispatch router
       (Router.Read { key = "proto:k" })
       ~client_id:3 ~seq:2
       ~on_result:(fun r ->
         match r with Router.Value v -> read_hit := Some v | _ -> ())
      : Kvsm.Client.submit_result);
  ignore
    (Router.dispatch router
       (Router.Read { key = "proto:absent" })
       ~client_id:3 ~seq:3
       ~on_result:(fun r ->
         match r with Router.Value v -> read_miss := Some v | _ -> ())
      : Kvsm.Client.submit_result);
  Gm.run_for m (Des.Time.sec 2);
  Alcotest.(check bool) "write committed" true !wrote;
  Alcotest.(check (option (option string)))
    "linearizable read sees the write"
    (Some (Some "42"))
    !read_hit;
  Alcotest.(check (option (option string)))
    "read of an absent key" (Some None) !read_miss

(* {2 Group-scoped metrics} *)

let test_metrics_prefixing () =
  let telemetry = Telemetry.Metrics.create () in
  let m = make ~seed:43L ~telemetry ~groups:2 () in
  Gm.run_for m (Des.Time.sec 5);
  Gm.collect_metrics m;
  let json = Telemetry.Metrics.to_json (Telemetry.Metrics.snapshot telemetry) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "snapshot mentions %S" needle)
        true
        (let n = String.length json and m = String.length needle in
         let rec go i =
           i + m <= n
           && (String.equal (String.sub json i m) needle || go (i + 1))
         in
         go 0))
    [ "g0/raft"; "g1/raft"; "multiraft/groups"; "leader_changes"; "des" ]

(* {2 Partition function properties} *)

let prop_shard_total_and_stable =
  Q.Test.make ~count:500 ~name:"shard_of_key: total, in range, stable"
    Q.(pair (string_of_size (Q.Gen.int_range 0 64)) (int_range 1 128))
    (fun (key, groups) ->
      let s = Router.shard_of_key ~groups key in
      s >= 0 && s < groups && s = Router.shard_of_key ~groups key)

let prop_shard_stable_across_jobs =
  Q.Test.make ~count:30 ~name:"shard_of_key: identical under campaign jobs"
    Q.(pair (small_list (string_of_size (Q.Gen.int_range 0 32))) (int_range 1 64))
    (fun (keys, groups) ->
      let shards jobs =
        Parallel.Campaign.all ~jobs
          (List.map (fun k () -> Router.shard_of_key ~groups k) keys)
      in
      shards 1 = shards 2)

(* {2 Scenario: sweep determinism and smoke} *)

let test_sweep_jobs_identical () =
  let run jobs =
    Scenarios.Multiraft.sweep ~seed:5L ~group_counts:[ 1; 2 ] ~replicas:3
      ~rates:[ 200. ] ~hold:(Des.Time.ms 500) ~instrument:true ~jobs ()
  in
  let a = run 1 and b = run 2 in
  Alcotest.(check int64)
    "sweep digest identical at jobs 1 and 2" a.Scenarios.Multiraft.digest
    b.Scenarios.Multiraft.digest;
  Alcotest.(check string)
    "merged metrics byte-identical"
    (Telemetry.Metrics.to_json a.Scenarios.Multiraft.metrics)
    (Telemetry.Metrics.to_json b.Scenarios.Multiraft.metrics)

let test_scenario_smoke () =
  let c =
    Scenarios.Multiraft.run_one ~seed:9L ~groups:2 ~rates:[ 300. ]
      ~hold:(Des.Time.sec 1) ()
  in
  Alcotest.(check int)
    "one level per rate" 1
    (List.length c.Scenarios.Multiraft.levels);
  Alcotest.(check bool)
    "served some load" true
    (c.Scenarios.Multiraft.peak_rps > 0.);
  Alcotest.(check int)
    "every group led" 2
    (Array.fold_left ( + ) 0 c.Scenarios.Multiraft.leader_distribution);
  Alcotest.(check bool)
    "router was exercised" true
    (c.Scenarios.Multiraft.hint_hits + c.Scenarios.Multiraft.hint_misses > 0)

let tests =
  [
    Alcotest.test_case "manager: shape and id partition" `Quick
      test_manager_shape;
    Alcotest.test_case "manager: rejects empty dimensions" `Quick
      test_manager_rejects_empty;
    Alcotest.test_case "router: writes isolate to their shard" `Quick
      test_routing_isolation;
    Alcotest.test_case "manager: one leader per group" `Quick
      test_leader_distribution_sums;
    Alcotest.test_case "router: hint learned and refreshed" `Quick
      test_hint_learned_and_refreshed;
    Alcotest.test_case "router: front-door protocol" `Quick
      test_dispatch_protocol;
    Alcotest.test_case "metrics: group scopes do not clobber" `Quick
      test_metrics_prefixing;
    to_alcotest prop_shard_total_and_stable;
    to_alcotest prop_shard_stable_across_jobs;
    Alcotest.test_case "sweep: jobs 1 and 2 bit-identical" `Slow
      test_sweep_jobs_identical;
    Alcotest.test_case "scenario: multiraft smoke" `Slow test_scenario_smoke;
  ]
