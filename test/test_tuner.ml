(* Unit tests for the Dynatune core: estimators, tuner, leader path. *)

module Time = Des.Time
module Config = Dynatune.Config
module Rtt = Dynatune.Rtt_estimator
module Loss = Dynatune.Loss_estimator
module Tuner = Dynatune.Tuner
module Leader_path = Dynatune.Leader_path

let check_ms = Alcotest.(check int)

(* {2 Config} *)

let test_config_default_valid () =
  match Config.validate Config.default with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_config_rejects_bad () =
  let bad_cases =
    [
      { Config.default with Config.safety_factor = -1. };
      { Config.default with Config.arrival_probability = 1. };
      { Config.default with Config.arrival_probability = 0. };
      { Config.default with Config.min_list_size = 1 };
      { Config.default with Config.max_list_size = 5 };
      { Config.default with Config.min_heartbeat_interval = 0 };
    ]
  in
  List.iteri
    (fun i cfg ->
      match Config.validate cfg with
      | Ok _ -> Alcotest.failf "case %d should be rejected" i
      | Error _ -> ())
    bad_cases

(* {2 Rtt_estimator} *)

let test_rtt_warmup_threshold () =
  let r = Rtt.create ~min_size:3 ~max_size:10 in
  Rtt.observe r (Time.ms 10);
  Rtt.observe r (Time.ms 12);
  Alcotest.(check bool) "not warm at 2" false (Rtt.warmed_up r);
  Alcotest.(check (option int)) "no Et before warm" None
    (Rtt.election_timeout r ~s:2.);
  Rtt.observe r (Time.ms 14);
  Alcotest.(check bool) "warm at 3" true (Rtt.warmed_up r)

let test_rtt_election_timeout_formula () =
  let r = Rtt.create ~min_size:2 ~max_size:10 in
  Rtt.observe r (Time.ms 100);
  Rtt.observe r (Time.ms 140);
  (* mean = 120ms, population std = 20ms, s = 2 -> 160ms *)
  (match Rtt.election_timeout r ~s:2. with
  | Some et -> check_ms "mu + 2 sigma" (Time.ms 160) et
  | None -> Alcotest.fail "warmed up");
  match Rtt.election_timeout r ~s:0. with
  | Some et -> check_ms "s=0 gives mean" (Time.ms 120) et
  | None -> Alcotest.fail "warmed up"

let test_rtt_window_slides () =
  let r = Rtt.create ~min_size:2 ~max_size:3 in
  List.iter (Rtt.observe r) [ Time.ms 1000; Time.ms 10; Time.ms 10; Time.ms 10 ];
  check_ms "old sample evicted" (Time.ms 10) (Rtt.mean r)

let test_rtt_clear () =
  let r = Rtt.create ~min_size:2 ~max_size:10 in
  List.iter (Rtt.observe r) [ Time.ms 5; Time.ms 7 ];
  Rtt.clear r;
  Alcotest.(check int) "empty" 0 (Rtt.length r);
  Alcotest.(check bool) "not warm" false (Rtt.warmed_up r)

(* {2 Loss_estimator} *)

let test_loss_no_loss () =
  let l = Loss.create ~min_size:2 ~max_size:100 in
  for i = 0 to 9 do
    ignore (Loss.observe l i)
  done;
  Alcotest.(check (float 1e-9)) "no gaps" 0. (Loss.loss_rate l);
  Alcotest.(check int) "expected count" 10 (Loss.expected l)

let test_loss_gap_detection () =
  let l = Loss.create ~min_size:2 ~max_size:100 in
  (* ids 0..9 with 5 missing: received 5 of expected 10. *)
  List.iter (fun i -> ignore (Loss.observe l i)) [ 0; 2; 4; 6; 9 ];
  Alcotest.(check (float 1e-9)) "half lost" 0.5 (Loss.loss_rate l)

let test_loss_duplicates_ignored () =
  let l = Loss.create ~min_size:2 ~max_size:100 in
  Alcotest.(check bool) "first recorded" true (Loss.observe l 5 = `Recorded);
  Alcotest.(check bool) "duplicate flagged" true (Loss.observe l 5 = `Duplicate);
  ignore (Loss.observe l 6);
  Alcotest.(check int) "length ignores duplicates" 2 (Loss.length l)

let test_loss_out_of_order () =
  let l = Loss.create ~min_size:2 ~max_size:100 in
  List.iter (fun i -> ignore (Loss.observe l i)) [ 3; 1; 2; 0 ];
  Alcotest.(check (option (pair int int))) "sorted span" (Some (0, 3))
    (Loss.span l);
  Alcotest.(check (float 1e-9)) "no loss despite reordering" 0.
    (Loss.loss_rate l)

let test_loss_eviction_keeps_recent () =
  let l = Loss.create ~min_size:2 ~max_size:4 in
  for i = 0 to 9 do
    ignore (Loss.observe l i)
  done;
  Alcotest.(check int) "bounded" 4 (Loss.length l);
  Alcotest.(check (option (pair int int))) "recent ids kept" (Some (6, 9))
    (Loss.span l)

let test_loss_eviction_with_insert_in_middle () =
  let l = Loss.create ~min_size:2 ~max_size:3 in
  List.iter (fun i -> ignore (Loss.observe l i)) [ 2; 4; 6 ];
  (* Full; inserting 5 evicts the oldest (2) and keeps order. *)
  ignore (Loss.observe l 5);
  Alcotest.(check (option (pair int int))) "span" (Some (4, 6)) (Loss.span l);
  Alcotest.(check int) "len" 3 (Loss.length l)

(* {2 required_heartbeats formula} *)

let test_required_heartbeats_formula () =
  let k p x = Tuner.required_heartbeats_for ~p ~x in
  Alcotest.(check int) "p=0 -> 1" 1 (k 0. 0.999);
  Alcotest.(check int) "p=0.05 x=0.999 -> 3" 3 (k 0.05 0.999);
  Alcotest.(check int) "p=0.10 x=0.999 -> 3" 3 (k 0.10 0.999);
  Alcotest.(check int) "p=0.30 x=0.999 -> 6" 6 (k 0.30 0.999);
  Alcotest.(check int) "p=0.5 x=0.999 -> 10" 10 (k 0.5 0.999);
  Alcotest.(check int) "p=1 -> max_int" max_int (k 1. 0.999)

let test_required_heartbeats_guarantee () =
  (* K must actually achieve 1 - p^K >= x. *)
  List.iter
    (fun p ->
      List.iter
        (fun x ->
          let k = Tuner.required_heartbeats_for ~p ~x in
          Alcotest.(check bool)
            (Printf.sprintf "p=%.2f x=%.4f k=%d" p x k)
            true
            (1. -. (p ** float_of_int k) >= x -. 1e-12))
        [ 0.9; 0.99; 0.999; 0.9999 ])
    [ 0.01; 0.05; 0.1; 0.2; 0.3; 0.5; 0.8 ]

(* {2 Tuner} *)

let small_cfg =
  {
    Config.default with
    Config.min_list_size = 3;
    max_list_size = 10;
  }

let feed tuner ~n ~rtt ?(skip = fun _ -> false) () =
  let id = ref 0 in
  for i = 0 to n - 1 do
    if not (skip i) then
      Tuner.observe_heartbeat tuner ~hb_id:!id ~rtt:(Some rtt);
    incr id
  done

let test_tuner_warming_uses_defaults () =
  let t = Tuner.create small_cfg in
  Alcotest.(check bool) "starts warming" true (Tuner.phase t = Tuner.Warming);
  check_ms "default Et" Config.default.Config.default_election_timeout
    (Tuner.election_timeout t);
  check_ms "default h" Config.default.Config.default_heartbeat_interval
    (Tuner.heartbeat_interval t)

let test_tuner_tunes_after_warmup () =
  let t = Tuner.create small_cfg in
  feed t ~n:5 ~rtt:(Time.ms 100) ();
  Alcotest.(check bool) "tuned" true (Tuner.phase t = Tuner.Tuned);
  (* Zero variance: Et = mean = 100ms (above the 10ms clamp). *)
  check_ms "Et = rtt" (Time.ms 100) (Tuner.election_timeout t);
  (* p=0 -> K=1 -> h = Et. *)
  Alcotest.(check int) "K=1 when lossless" 1 (Tuner.required_heartbeats t);
  check_ms "h = Et" (Time.ms 100) (Tuner.heartbeat_interval t)

let test_tuner_h_under_loss () =
  let t = Tuner.create { small_cfg with Config.max_list_size = 100 } in
  (* Drop 30% of heartbeat ids (deterministic pattern: 3 in 10).  With
     ids 3..99 retained, p = 1 - 70/97 ≈ 0.278. *)
  feed t ~n:100 ~rtt:(Time.ms 100) ~skip:(fun i -> i mod 10 < 3) ();
  let p = Tuner.loss_rate t in
  Alcotest.(check bool)
    (Printf.sprintf "loss %.3f near 0.3" p)
    true
    (p > 0.25 && p < 0.35);
  let k = Tuner.required_heartbeats t in
  Alcotest.(check int) "K for 30% loss" 6 k;
  check_ms "h = Et/K"
    (Tuner.election_timeout t / k)
    (Tuner.heartbeat_interval t)

let test_tuner_reset_falls_back () =
  let t = Tuner.create small_cfg in
  feed t ~n:5 ~rtt:(Time.ms 50) ();
  Alcotest.(check bool) "tuned before reset" true (Tuner.phase t = Tuner.Tuned);
  Tuner.reset t;
  Alcotest.(check bool) "warming after reset" true
    (Tuner.phase t = Tuner.Warming);
  check_ms "default Et restored"
    Config.default.Config.default_election_timeout (Tuner.election_timeout t)

let test_tuner_et_clamped_below () =
  let t = Tuner.create small_cfg in
  feed t ~n:5 ~rtt:(Time.us 100) ();
  check_ms "clamped to min_election_timeout"
    small_cfg.Config.min_election_timeout (Tuner.election_timeout t)

let test_tuner_et_clamped_above () =
  let cfg = { small_cfg with Config.max_election_timeout = Time.ms 300 } in
  let t = Tuner.create cfg in
  feed t ~n:5 ~rtt:(Time.ms 2000) ();
  check_ms "clamped to max_election_timeout" (Time.ms 300)
    (Tuner.election_timeout t)

let test_tuner_duplicate_ids_dont_advance () =
  let t = Tuner.create small_cfg in
  for _ = 1 to 10 do
    Tuner.observe_heartbeat t ~hb_id:0 ~rtt:(Some (Time.ms 10))
  done;
  Alcotest.(check int) "one sample" 1 (Tuner.samples t);
  Alcotest.(check bool) "still warming" true (Tuner.phase t = Tuner.Warming)

let test_tuner_et_tracks_rtt_increase () =
  let t = Tuner.create small_cfg in
  feed t ~n:10 ~rtt:(Time.ms 50) ();
  let et_before = Tuner.election_timeout t in
  (* Window slides: feed higher RTTs with fresh ids. *)
  for i = 100 to 115 do
    Tuner.observe_heartbeat t ~hb_id:i ~rtt:(Some (Time.ms 500))
  done;
  let et_after = Tuner.election_timeout t in
  Alcotest.(check bool)
    (Printf.sprintf "Et rises %dms -> %dms"
       (int_of_float (Time.to_ms_f et_before))
       (int_of_float (Time.to_ms_f et_after)))
    true (et_after > et_before);
  Alcotest.(check bool) "Et at least new RTT" true (et_after >= Time.ms 500)

(* {2 EWMA estimator} *)

module Ewma = Dynatune.Ewma_estimator

let test_ewma_seeds_from_first_sample () =
  let e = Ewma.create ~min_samples:1 () in
  Ewma.observe e (Time.ms 100);
  check_ms "srtt = first sample" (Time.ms 100) (Ewma.mean e);
  check_ms "rttvar = half of it" (Time.ms 50) (Ewma.deviation e)

let test_ewma_converges () =
  let e = Ewma.create ~alpha:0.125 ~min_samples:1 () in
  for _ = 1 to 200 do
    Ewma.observe e (Time.ms 80)
  done;
  Alcotest.(check bool) "srtt converges to the level" true
    (abs_float (Time.to_ms_f (Ewma.mean e) -. 80.) < 0.5);
  Alcotest.(check bool) "rttvar decays toward zero" true
    (Time.to_ms_f (Ewma.deviation e) < 1.)

let test_ewma_tracks_level_shift () =
  let fresh alpha =
    let e = Ewma.create ~alpha ~min_samples:1 () in
    for _ = 1 to 100 do
      Ewma.observe e (Time.ms 50)
    done;
    (* Count samples needed after a shift to 150ms until srtt > 140ms. *)
    let n = ref 0 in
    while Time.to_ms_f (Ewma.mean e) < 140. && !n < 1000 do
      incr n;
      Ewma.observe e (Time.ms 150)
    done;
    !n
  in
  let slow = fresh 0.125 and fast = fresh 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "larger alpha adapts faster (%d < %d)" fast slow)
    true (fast < slow)

let test_ewma_warmup_and_clear () =
  let e = Ewma.create ~min_samples:3 () in
  Ewma.observe e (Time.ms 10);
  Ewma.observe e (Time.ms 10);
  Alcotest.(check bool) "not warm at 2" false (Ewma.warmed_up e);
  Alcotest.(check (option int)) "no Et before warm" None
    (Ewma.election_timeout e ~s:2.);
  Ewma.observe e (Time.ms 10);
  Alcotest.(check bool) "warm at 3" true (Ewma.warmed_up e);
  Ewma.clear e;
  Alcotest.(check int) "cleared" 0 (Ewma.length e);
  Alcotest.(check bool) "not warm after clear" false (Ewma.warmed_up e)

let test_ewma_rejects_bad_alpha () =
  List.iter
    (fun alpha ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Ewma.create ~alpha ~min_samples:1 ());
           false
         with Invalid_argument _ -> true))
    [ 0.; -0.5; 1.5 ]

let test_tuner_with_ewma_backend () =
  let cfg =
    {
      small_cfg with
      Config.rtt_estimator = Config.Ewma 0.25;
    }
  in
  let t = Tuner.create cfg in
  feed t ~n:30 ~rtt:(Time.ms 100) ();
  Alcotest.(check bool) "tuned" true (Tuner.phase t = Tuner.Tuned);
  let et = Time.to_ms_f (Tuner.election_timeout t) in
  (* srtt -> 100, rttvar decays: Et approaches 100 from above. *)
  Alcotest.(check bool)
    (Printf.sprintf "Et %.1f near RTT" et)
    true
    (et >= 100. && et < 140.);
  Tuner.reset t;
  Alcotest.(check bool) "reset rewinds to warming" true
    (Tuner.phase t = Tuner.Warming);
  check_ms "defaults after reset" cfg.Config.default_election_timeout
    (Tuner.election_timeout t)

(* {2 Leader_path} *)

let test_leader_path_meta_sequence () =
  let p = Leader_path.create Config.default in
  Alcotest.(check int) "ids sequential" 0 (Leader_path.next_id p);
  Alcotest.(check int) "ids sequential" 1 (Leader_path.next_id p)

let test_leader_path_rtt_shipped_once () =
  let p = Leader_path.create Config.default in
  Alcotest.(check (option int)) "no measurement yet" None (Leader_path.take_rtt p);
  Leader_path.on_response p ~now:(Time.ms 30) ~echo_sent_at:Time.zero
    ~tuned_h:None;
  Alcotest.(check (option int)) "rtt piggybacked" (Some (Time.ms 30))
    (Leader_path.take_rtt p);
  Alcotest.(check (option int)) "shipped only once" None (Leader_path.take_rtt p)

let test_leader_path_applies_h () =
  let p = Leader_path.create Config.default in
  check_ms "default interval"
    Config.default.Config.default_heartbeat_interval (Leader_path.interval p);
  Leader_path.on_response p ~now:(Time.ms 10) ~echo_sent_at:Time.zero
    ~tuned_h:(Some (Time.ms 42));
  check_ms "tuned interval applied" (Time.ms 42) (Leader_path.interval p)

let test_leader_path_h_clamped () =
  let p = Leader_path.create Config.default in
  Leader_path.on_response p ~now:(Time.ms 10) ~echo_sent_at:Time.zero
    ~tuned_h:(Some 1);
  check_ms "clamped to min interval"
    Config.default.Config.min_heartbeat_interval (Leader_path.interval p)

let test_leader_path_future_echo_ignored () =
  let p = Leader_path.create Config.default in
  Leader_path.on_response p ~now:(Time.ms 10) ~echo_sent_at:(Time.ms 20)
    ~tuned_h:None;
  Alcotest.(check (option int)) "future timestamp rejected" None
    (Leader_path.last_rtt p)

let test_leader_path_reset () =
  let p = Leader_path.create Config.default in
  ignore (Leader_path.next_id p : int);
  Leader_path.on_response p ~now:(Time.ms 5) ~echo_sent_at:Time.zero
    ~tuned_h:(Some (Time.ms 7));
  Leader_path.reset p;
  Alcotest.(check int) "id counter reset" 0 (Leader_path.sent_count p);
  check_ms "interval reset"
    Config.default.Config.default_heartbeat_interval (Leader_path.interval p)

let tests =
  [
    Alcotest.test_case "config: default valid" `Quick test_config_default_valid;
    Alcotest.test_case "config: rejects bad" `Quick test_config_rejects_bad;
    Alcotest.test_case "rtt: warmup threshold" `Quick test_rtt_warmup_threshold;
    Alcotest.test_case "rtt: Et formula" `Quick
      test_rtt_election_timeout_formula;
    Alcotest.test_case "rtt: window slides" `Quick test_rtt_window_slides;
    Alcotest.test_case "rtt: clear" `Quick test_rtt_clear;
    Alcotest.test_case "loss: no loss" `Quick test_loss_no_loss;
    Alcotest.test_case "loss: gap detection" `Quick test_loss_gap_detection;
    Alcotest.test_case "loss: duplicates ignored" `Quick
      test_loss_duplicates_ignored;
    Alcotest.test_case "loss: out of order" `Quick test_loss_out_of_order;
    Alcotest.test_case "loss: eviction keeps recent" `Quick
      test_loss_eviction_keeps_recent;
    Alcotest.test_case "loss: eviction mid-insert" `Quick
      test_loss_eviction_with_insert_in_middle;
    Alcotest.test_case "K: formula values" `Quick
      test_required_heartbeats_formula;
    Alcotest.test_case "K: satisfies guarantee" `Quick
      test_required_heartbeats_guarantee;
    Alcotest.test_case "tuner: warming defaults" `Quick
      test_tuner_warming_uses_defaults;
    Alcotest.test_case "tuner: tunes after warmup" `Quick
      test_tuner_tunes_after_warmup;
    Alcotest.test_case "tuner: h under loss" `Quick test_tuner_h_under_loss;
    Alcotest.test_case "tuner: reset falls back" `Quick
      test_tuner_reset_falls_back;
    Alcotest.test_case "tuner: Et clamped below" `Quick
      test_tuner_et_clamped_below;
    Alcotest.test_case "tuner: Et clamped above" `Quick
      test_tuner_et_clamped_above;
    Alcotest.test_case "tuner: duplicates don't advance" `Quick
      test_tuner_duplicate_ids_dont_advance;
    Alcotest.test_case "tuner: Et tracks RTT increase" `Quick
      test_tuner_et_tracks_rtt_increase;
    Alcotest.test_case "ewma: seeds from first sample" `Quick
      test_ewma_seeds_from_first_sample;
    Alcotest.test_case "ewma: converges" `Quick test_ewma_converges;
    Alcotest.test_case "ewma: tracks level shift" `Quick
      test_ewma_tracks_level_shift;
    Alcotest.test_case "ewma: warmup and clear" `Quick
      test_ewma_warmup_and_clear;
    Alcotest.test_case "ewma: rejects bad alpha" `Quick
      test_ewma_rejects_bad_alpha;
    Alcotest.test_case "tuner: ewma backend" `Quick
      test_tuner_with_ewma_backend;
    Alcotest.test_case "path: meta sequence" `Quick
      test_leader_path_meta_sequence;
    Alcotest.test_case "path: rtt shipped once" `Quick
      test_leader_path_rtt_shipped_once;
    Alcotest.test_case "path: applies h" `Quick test_leader_path_applies_h;
    Alcotest.test_case "path: h clamped" `Quick test_leader_path_h_clamped;
    Alcotest.test_case "path: future echo ignored" `Quick
      test_leader_path_future_echo_ignored;
    Alcotest.test_case "path: reset" `Quick test_leader_path_reset;
  ]
