(* Lint self-test fixture: near-miss patterns that must NOT fire.
   Mentions of Unix.gettimeofday, Sys.time, Random.int, Obj.magic,
   Stdlib.compare and Hashtbl.hash inside comments are fine. *)

let description = "Random.self_init, Unix.time and exit are banned in lib/"
let exit_code_of_result = function Ok _ -> 0 | Error _ -> 1
let exited = "the message said exit 1, but strings are not code"
let compare_ints (a : int) b = Int.compare a b
let wait_times clock = Unix.times clock (* not Unix.time *)
let quote = '"'
let still_scanned_after_char_literal x = x

(* A function returning a fresh ref is not a mutable global... *)
let fresh_counter () = ref 0

(* ...and neither is a local one. *)
let bump () =
  let local = ref 0 in
  incr local;
  !local

(* Building a string is not printing it, and writing to a formatter the
   caller passed in is how lib/ code is supposed to render. *)
let render x = Printf.sprintf "%d" x
let pp ppf x = Format.fprintf ppf "%d" x
let pp_name ppf = Format.pp_print_string ppf "name"

(* A [@hot] binding that keeps the allocation discipline: loops and
   in-place updates, no combinators, no formatting, no lambdas... *)
let[@hot] sum_ready arr =
  let total = ref 0 in
  for i = 0 to Array.length arr - 1 do
    total := !total + Array.unsafe_get arr i
  done;
  !total

(* ...the postfix [@@hot] spelling also marks the binding... *)
let add_one x = x + 1 [@@hot]

(* ...and an unmarked neighbour may use the combinators freely. *)
let labels xs = List.map string_of_int xs

(* Routing through the replication seam is the sanctioned way to reach
   the fabric, and other Fabric entry points (Fabric.send is banned from
   lib/raft, but only that one) stay available. *)
let transmit = Replication.transmit
let queue_depth fabric ~src ~dst = Netsim.Fabric.pending fabric ~src ~dst
let sender = "Fabric.sender is a name, not a call to the banned entry point"
