(* Lint self-test fixture: every forbidden pattern, one per rule.  This
   file is never compiled — it only feeds [lint --self-test]. *)

(* wall-clock *)
let now () = Unix.gettimeofday ()
let cpu_seconds = Sys.time ()
let epoch = Unix.time ()

(* global-rng *)
let roll () = Random.int 6
let seed () = Random.self_init ()

(* obj-magic *)
let cast x = Obj.magic x

(* poly-compare *)
let cmp a b = Stdlib.compare a b
let bucket x = Hashtbl.hash x

(* mutable-global *)
let counter = ref 0
let total : float ref = ref 0.

(* stdlib-exit *)
let bail () = exit 1
let die code = Stdlib.exit code

(* raw-fabric-send *)
let ship fabric kind ~src ~dst msg = Netsim.Fabric.send fabric kind ~src ~dst msg
let ship_aliased fabric kind ~src ~dst msg = Fabric.send fabric kind ~src ~dst msg

(* hot-alloc: a [@hot] binding calling allocating combinators, formatting,
   and holding a lambda literal *)
let[@hot] relay_all peers msg =
  let framed = List.map (fun p -> (p, msg)) peers in
  Format.eprintf "relaying %d@." (List.length framed);
  Array.of_list framed

(* direct-print *)
let show x = Printf.printf "%d\n" x
let complain msg = Format.eprintf "%s@." msg
let announce () = print_endline "ready"
let default_ppf = Format.std_formatter
