(* stdlib-exit false-positive guard: identifiers merely *named* [exit]
   — record fields, puns, labelled and optional arguments, bindings,
   annotations — are not process exits.  Every line here fired before
   the rule learned to read its surroundings. *)

type outcome = { mutable exit : int; label : string }

let mk code = { exit = code; label = "run" }
let merge o = { o with exit = 0 }
let pun exit = { exit; label = "pun" }
let update o = o.exit <- o.exit + 1
let with_label ~exit:code () = code + 1
let optional ?exit:(code = 0) () = code
let annotated (exit : int) = { label = "annot"; exit }

let multi_line =
  {
    exit = 1;
    label = "multi";
  }

let rec loop n = if n = 0 then mk 0 else loop (n - 1)
and exit = { exit = 9; label = "shadow" }
