(* The correctness-analysis subsystem: trace digests, the invariant
   checker against deliberately broken toy nodes (each invariant must
   fire), legitimate crash-recovery (must NOT fire), a 200-seed sweep of
   Always-checked leader failovers, and the determinism sanitizer over
   sharded campaigns. *)

module Cluster = Harness.Cluster
module Node_id = Netsim.Node_id

(* {1 Digest} *)

let test_digest_known_values () =
  Alcotest.(check int64)
    "FNV-1a offset basis" 0xCBF29CE484222325L (Check.Digest.of_string "");
  Alcotest.(check int64)
    "FNV-1a of \"a\"" 0xAF63DC4C8601EC8CL (Check.Digest.of_string "a");
  let a = Check.Digest.create () and b = Check.Digest.create () in
  Check.Digest.feed_int a 1;
  Check.Digest.feed_int64 b 1L;
  Alcotest.(check int64)
    "feed_int = feed_int64 on the same value" (Check.Digest.value a)
    (Check.Digest.value b)

let test_digest_order_sensitive () =
  let x = Check.Digest.of_string "x" and y = Check.Digest.of_string "y" in
  Alcotest.(check bool)
    "combine is order-sensitive" false
    (Int64.equal (Check.Digest.combine [ x; y ]) (Check.Digest.combine [ y; x ]));
  Alcotest.(check bool)
    "of_string separates ab from ba" false
    (Int64.equal (Check.Digest.of_string "ab") (Check.Digest.of_string "ba"))

(* {1 Broken toy nodes} *)

(* A hand-driven server state: tests mutate it between checker passes to
   stage each violation. *)
type fake = {
  fid : Node_id.t;
  mutable up : bool;
  mutable inc : int;
  mutable role : Raft.Types.role;
  mutable term : int;
  mutable commit : int;
  mutable vote : Node_id.t option;
  mutable entries : Raft.Log.entry list;  (* ascending, index-contiguous *)
}

let fake id =
  {
    fid = id;
    up = true;
    inc = 0;
    role = Raft.Types.Follower;
    term = 1;
    commit = 0;
    vote = None;
    entries = [];
  }

let entry ?(command = Raft.Log.Noop) ~term ~index () =
  { Raft.Log.term; index; command }

let view f : Check.node_view =
  let entry_at i =
    List.find_opt (fun (e : Raft.Log.entry) -> e.Raft.Log.index = i) f.entries
  in
  {
    Check.id = f.fid;
    alive = (fun () -> f.up);
    incarnation = (fun () -> f.inc);
    role = (fun () -> f.role);
    term = (fun () -> f.term);
    commit_index = (fun () -> f.commit);
    voted_for = (fun () -> f.vote);
    last_index =
      (fun () ->
        List.fold_left
          (fun acc (e : Raft.Log.entry) -> max acc e.Raft.Log.index)
          0 f.entries);
    snapshot_index = (fun () -> 0);
    term_at =
      (fun i ->
        if i = 0 then Some 0
        else Option.map (fun (e : Raft.Log.entry) -> e.Raft.Log.term) (entry_at i));
    entry_at;
    (* Toy fixtures carry no configuration: the membership invariants
       no-op on empty views. *)
    voters = (fun () -> []);
    learners = (fun () -> []);
    votes = (fun () -> []);
  }

let checker_for fakes =
  Check.create ~mode:Check.Always ~nodes:(List.map view fakes) ()

(* [stage] puts the fakes in a healthy state (already done by the
   caller), a first pass records baselines, [break] stages the
   violation, and the second pass must raise it. *)
let expect_violation ~invariant ~break fakes =
  let t = checker_for fakes in
  Check.check_now t;
  break ();
  match Check.check_now t with
  | () -> Alcotest.failf "checker missed %s" invariant
  | exception Check.Violation v ->
      Alcotest.(check string) "invariant name" invariant v.Check.invariant

let two_ids = Node_id.range 2

let test_catches_election_safety () =
  let a = fake (List.nth two_ids 0) and b = fake (List.nth two_ids 1) in
  expect_violation ~invariant:"election-safety"
    ~break:(fun () ->
      a.role <- Raft.Types.Leader;
      a.term <- 3;
      b.role <- Raft.Types.Leader;
      b.term <- 3)
    [ a; b ]

let test_catches_term_monotonic () =
  let a = fake (List.hd two_ids) in
  a.term <- 5;
  expect_violation ~invariant:"term-monotonic"
    ~break:(fun () -> a.term <- 4)
    [ a ]

let test_catches_commit_monotonic () =
  let a = fake (List.hd two_ids) in
  a.entries <- [ entry ~term:1 ~index:1 () ];
  a.commit <- 1;
  expect_violation ~invariant:"commit-monotonic"
    ~break:(fun () -> a.commit <- 0)
    [ a ]

let test_catches_single_vote () =
  let a = fake (List.nth two_ids 0) in
  a.vote <- Some (List.nth two_ids 0);
  expect_violation ~invariant:"single-vote"
    ~break:(fun () -> a.vote <- Some (List.nth two_ids 1))
    [ a ]

let test_catches_pre_vote_disruption () =
  let a = fake (List.hd two_ids) in
  expect_violation ~invariant:"pre-vote-disruption"
    ~break:(fun () ->
      a.role <- Raft.Types.Pre_candidate;
      a.term <- a.term + 1)
    [ a ]

let test_catches_leader_append_only () =
  let a = fake (List.hd two_ids) in
  a.role <- Raft.Types.Leader;
  a.entries <- [ entry ~term:1 ~index:1 (); entry ~term:1 ~index:2 () ];
  expect_violation ~invariant:"leader-append-only"
    ~break:(fun () -> a.entries <- [ entry ~term:1 ~index:1 () ])
    [ a ]

let test_catches_log_matching () =
  let a = fake (List.nth two_ids 0) and b = fake (List.nth two_ids 1) in
  let data payload = Raft.Log.Data { payload; client_id = 1; seq = 1 } in
  expect_violation ~invariant:"log-matching"
    ~break:(fun () ->
      (* Same term at index 2, different entries at index 1. *)
      a.entries <-
        [
          entry ~command:(data "a") ~term:1 ~index:1 ();
          entry ~term:2 ~index:2 ();
        ];
      b.entries <-
        [
          entry ~command:(data "b") ~term:1 ~index:1 ();
          entry ~term:2 ~index:2 ();
        ])
    [ a; b ]

let test_catches_state_machine_safety () =
  let a = fake (List.nth two_ids 0) and b = fake (List.nth two_ids 1) in
  let data payload = Raft.Log.Data { payload; client_id = 1; seq = 1 } in
  expect_violation ~invariant:"state-machine-safety"
    ~break:(fun () ->
      a.entries <- [ entry ~command:(data "a") ~term:1 ~index:1 () ];
      a.commit <- 1;
      b.entries <- [ entry ~command:(data "b") ~term:1 ~index:1 () ];
      b.commit <- 1)
    [ a; b ]

let test_catches_leader_completeness () =
  let a = fake (List.nth two_ids 0) and b = fake (List.nth two_ids 1) in
  (* a has committed index 1; b is elected leader of a higher term with
     an empty log. *)
  a.entries <- [ entry ~term:1 ~index:1 () ];
  a.commit <- 1;
  expect_violation ~invariant:"leader-completeness"
    ~break:(fun () ->
      b.role <- Raft.Types.Leader;
      b.term <- 2)
    [ a; b ]

let test_crash_recovery_not_flagged () =
  let a = fake (List.hd two_ids) in
  a.term <- 4;
  a.role <- Raft.Types.Leader;
  a.entries <- [ entry ~term:4 ~index:1 () ];
  a.commit <- 1;
  let t = checker_for [ a ] in
  Check.check_now t;
  (* Crash-recovery: same term and log, but volatile state reset and the
     incarnation bumped — legitimate, must not raise. *)
  a.inc <- a.inc + 1;
  a.role <- Raft.Types.Follower;
  a.commit <- 0;
  Check.check_now t;
  (* Losing the persisted term across the restart is NOT legitimate. *)
  a.inc <- a.inc + 1;
  a.term <- 3;
  match Check.check_now t with
  | () -> Alcotest.fail "checker missed a term lost across restart"
  | exception Check.Violation v ->
      Alcotest.(check string) "invariant name" "term-monotonic"
        v.Check.invariant

let test_off_mode_is_inert () =
  let a = fake (List.hd two_ids) in
  a.term <- 5;
  let t = Check.create ~mode:Check.Off ~nodes:[ view a ] () in
  Check.step t;
  a.term <- 1;
  (* a blatant violation, but mode Off never looks *)
  Check.check_now t;
  Alcotest.(check int) "no checks ran" 0 (Check.checks_run t)

(* {1 Live clusters} *)

(* 200 seeds of Always-checked failover on a small fast cluster: the
   checker must stay silent through every election. *)
let test_seed_sweep () =
  for seed = 1 to 200 do
    let conditions =
      Netsim.Conditions.(constant (profile ~rtt_ms:10. ~jitter:0.05 ()))
    in
    let c =
      Cluster.create ~seed:(Int64.of_int seed) ~n:3
        ~config:(Raft.Config.static ()) ~conditions ~check:Check.Always ()
    in
    Cluster.start c;
    (match Cluster.await_leader c ~timeout:(Des.Time.sec 20) with
    | Some l ->
        Raft.Node.pause l;
        Cluster.run_for c (Des.Time.sec 3);
        Raft.Node.resume l;
        Cluster.run_for c (Des.Time.sec 1)
    | None -> Alcotest.failf "seed %d: no initial leader" seed);
    Cluster.check_now c
  done

let test_checker_runs_in_always_mode () =
  let c =
    Cluster.create ~seed:9L ~n:3 ~config:(Raft.Config.static ())
      ~check:Check.Always ()
  in
  Cluster.start c;
  ignore (Cluster.await_leader c ~timeout:(Des.Time.sec 20) : Raft.Node.t option);
  match Cluster.checker c with
  | None -> Alcotest.fail "no checker despite Check.Always"
  | Some ck ->
      Alcotest.(check bool) "events observed" true (Check.events_seen ck > 0);
      Alcotest.(check int) "Always checks every event"
        (Check.events_seen ck) (Check.checks_run ck)

(* {1 Determinism sanitizer} *)

let test_digest_same_seed_same_run () =
  let run () =
    let c =
      Cluster.create ~seed:77L ~n:3 ~config:(Raft.Config.static ()) ()
    in
    Cluster.start c;
    Cluster.run_for c (Des.Time.sec 10);
    Cluster.trace_digest c
  in
  Alcotest.(check int64) "same seed, same digest" (run ()) (run ());
  let other =
    let c =
      Cluster.create ~seed:78L ~n:3 ~config:(Raft.Config.static ()) ()
    in
    Cluster.start c;
    Cluster.run_for c (Des.Time.sec 10);
    Cluster.trace_digest c
  in
  Alcotest.(check bool) "different seed, different digest" false
    (Int64.equal (run ()) other)

let test_fig4_digest_worker_invariant () =
  let run jobs =
    Scenarios.Fig4.run ~failures:4 ~jobs ~shards:2 ~config:(Raft.Config.static ())
      ()
  in
  Alcotest.(check int64)
    "fig4: jobs=1 and jobs=2 digests identical on a pinned plan"
    (run 1).Scenarios.Fig4.digest (run 2).Scenarios.Fig4.digest

let test_fig8_digest_worker_invariant () =
  let run jobs =
    Scenarios.Fig8.run ~failures:4 ~jobs ~shards:2 ~config:(Raft.Config.static ())
      ()
  in
  Alcotest.(check int64)
    "fig8: jobs=1 and jobs=2 digests identical on a pinned plan"
    (run 1).Scenarios.Fig4.digest (run 2).Scenarios.Fig4.digest

let tests =
  [
    Alcotest.test_case "digest: FNV-1a known values" `Quick
      test_digest_known_values;
    Alcotest.test_case "digest: order sensitivity" `Quick
      test_digest_order_sensitive;
    Alcotest.test_case "catches: election safety" `Quick
      test_catches_election_safety;
    Alcotest.test_case "catches: term monotonicity" `Quick
      test_catches_term_monotonic;
    Alcotest.test_case "catches: commit monotonicity" `Quick
      test_catches_commit_monotonic;
    Alcotest.test_case "catches: single vote per term" `Quick
      test_catches_single_vote;
    Alcotest.test_case "catches: pre-vote disruption" `Quick
      test_catches_pre_vote_disruption;
    Alcotest.test_case "catches: leader append-only" `Quick
      test_catches_leader_append_only;
    Alcotest.test_case "catches: log matching" `Quick test_catches_log_matching;
    Alcotest.test_case "catches: state machine safety" `Quick
      test_catches_state_machine_safety;
    Alcotest.test_case "catches: leader completeness" `Quick
      test_catches_leader_completeness;
    Alcotest.test_case "crash-recovery resets are legitimate" `Quick
      test_crash_recovery_not_flagged;
    Alcotest.test_case "mode Off is inert" `Quick test_off_mode_is_inert;
    Alcotest.test_case "checker active on a live cluster" `Quick
      test_checker_runs_in_always_mode;
    Alcotest.test_case "200-seed failover sweep, zero violations" `Slow
      test_seed_sweep;
    Alcotest.test_case "digest: seed-determined on a live cluster" `Quick
      test_digest_same_seed_same_run;
    Alcotest.test_case "fig4 digest invariant to worker count" `Slow
      test_fig4_digest_worker_invariant;
    Alcotest.test_case "fig8 digest invariant to worker count" `Slow
      test_fig8_digest_worker_invariant;
  ]
