(* Unit tests for the discrete-event simulation kernel. *)

module Time = Des.Time
module Heap = Des.Heap
module Engine = Des.Engine
module Timer = Des.Timer
module Mtrace = Des.Mtrace

(* {2 Time} *)

let test_time_conversions () =
  Alcotest.(check int) "ms" 5_000_000 (Time.ms 5);
  Alcotest.(check int) "us" 5_000 (Time.us 5);
  Alcotest.(check int) "sec" 1_000_000_000 (Time.sec 1);
  Alcotest.(check int) "of_ms_f rounds" 1_500_000 (Time.of_ms_f 1.5);
  Alcotest.(check (float 1e-9)) "to_ms_f" 1.5 (Time.to_ms_f 1_500_000);
  Alcotest.(check (float 1e-9)) "to_sec_f" 0.25 (Time.to_sec_f 250_000_000)

let test_time_clamp () =
  Alcotest.(check int) "below" 10 (Time.clamp 5 ~lo:10 ~hi:20);
  Alcotest.(check int) "above" 20 (Time.clamp 25 ~lo:10 ~hi:20);
  Alcotest.(check int) "inside" 15 (Time.clamp 15 ~lo:10 ~hi:20)

let test_time_scale () =
  Alcotest.(check int) "halving" (Time.ms 50) (Time.scale (Time.ms 100) 0.5)

(* {2 Heap} *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let drained = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some v ->
        drained := v :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted output" [ 1; 1; 2; 3; 4; 5; 9 ]
    (List.rev !drained)

let test_heap_peek () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "peek does not remove" 2 (Heap.length h)

let test_heap_random_drain () =
  let rng = Stats.Rng.create ~seed:77L () in
  let h = Heap.create ~cmp:compare in
  let l = List.init 1000 (fun _ -> Stats.Rng.int rng 10_000) in
  List.iter (Heap.push h) l;
  let expected = List.sort compare l in
  let got = List.filter_map (fun _ -> Heap.pop h) l in
  Alcotest.(check (list int)) "heapsort matches" expected got

(* {2 Engine} *)

let test_engine_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  let log tag () = order := tag :: !order in
  ignore (Engine.schedule_at e (Time.ms 30) (log "c"));
  ignore (Engine.schedule_at e (Time.ms 10) (log "a"));
  ignore (Engine.schedule_at e (Time.ms 20) (log "b"));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore
      (Engine.schedule_at e (Time.ms 10) (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order on ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref Time.zero in
  ignore (Engine.schedule_at e (Time.ms 42) (fun () -> seen := Engine.now e));
  Engine.run e;
  Alcotest.(check int) "clock at event time" (Time.ms 42) !seen

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e (Time.ms 5) (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_run_until_boundary () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule_at e (Time.ms 10) (fun () -> fired := 10 :: !fired));
  ignore (Engine.schedule_at e (Time.ms 20) (fun () -> fired := 20 :: !fired));
  Engine.run_until e (Time.ms 15);
  Alcotest.(check (list int)) "only events <= limit" [ 10 ] !fired;
  Alcotest.(check int) "clock set to limit" (Time.ms 15) (Engine.now e);
  Engine.run_until e (Time.ms 25);
  Alcotest.(check (list int)) "rest runs later" [ 20; 10 ] !fired

let test_engine_run_until_cancelled_head () =
  (* A cancelled event at the queue head must not cause an event beyond
     the limit to run. *)
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e (Time.ms 5) (fun () -> ()) in
  ignore (Engine.schedule_at e (Time.ms 50) (fun () -> fired := true));
  Engine.cancel h;
  Engine.run_until e (Time.ms 10);
  Alcotest.(check bool) "beyond-limit event did not run" false !fired

let test_engine_schedule_during_run () =
  let e = Engine.create () in
  let result = ref 0 in
  ignore
    (Engine.schedule_at e (Time.ms 1) (fun () ->
         ignore
           (Engine.schedule_after e (Time.ms 1) (fun () -> result := 42))));
  Engine.run e;
  Alcotest.(check int) "nested scheduling runs" 42 !result

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e (Time.ms 10) (fun () -> ()));
  Engine.run e;
  Alcotest.(check bool) "scheduling in the past raises" true
    (try
       ignore (Engine.schedule_at e (Time.ms 5) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_counters () =
  let e = Engine.create () in
  for i = 1 to 5 do
    ignore (Engine.schedule_at e (Time.ms i) (fun () -> ()))
  done;
  Alcotest.(check int) "pending" 5 (Engine.pending_events e);
  Engine.run e;
  Alcotest.(check int) "processed" 5 (Engine.processed_events e);
  Alcotest.(check int) "drained" 0 (Engine.pending_events e)

(* {2 Timer} *)

let test_timer_fires_once () =
  let e = Engine.create () in
  let count = ref 0 in
  let t = Timer.create e (fun () -> incr count) in
  Timer.arm t (Time.ms 10);
  Engine.run e;
  Alcotest.(check int) "fires once" 1 !count

let test_timer_rearm_cancels_previous () =
  let e = Engine.create () in
  let fired_at = ref [] in
  let t = ref None in
  let timer =
    Timer.create e (fun () -> fired_at := Engine.now e :: !fired_at)
  in
  t := Some timer;
  Timer.arm timer (Time.ms 10);
  ignore
    (Engine.schedule_at e (Time.ms 5) (fun () -> Timer.arm timer (Time.ms 10)));
  Engine.run e;
  Alcotest.(check (list int)) "fires only at re-armed deadline" [ Time.ms 15 ]
    !fired_at

let test_timer_disarm () =
  let e = Engine.create () in
  let count = ref 0 in
  let t = Timer.create e (fun () -> incr count) in
  Timer.arm t (Time.ms 10);
  Timer.disarm t;
  Engine.run e;
  Alcotest.(check int) "disarmed timer is silent" 0 !count;
  Alcotest.(check bool) "not armed" false (Timer.is_armed t)

let test_timer_remaining () =
  let e = Engine.create () in
  let t = Timer.create e (fun () -> ()) in
  Timer.arm t (Time.ms 100);
  ignore
    (Engine.schedule_at e (Time.ms 40) (fun () ->
         match Timer.remaining t with
         | Some r -> Alcotest.(check int) "remaining" (Time.ms 60) r
         | None -> Alcotest.fail "expected armed timer"));
  Engine.run_until e (Time.ms 50);
  Timer.disarm t

let test_timer_armed_span_persists () =
  let e = Engine.create () in
  let t = Timer.create e (fun () -> ()) in
  Timer.arm t (Time.ms 123);
  Engine.run e;
  Alcotest.(check (option int)) "span recorded after firing"
    (Some (Time.ms 123)) (Timer.armed_span t)

let test_timer_rearm_from_callback () =
  let e = Engine.create () in
  let count = ref 0 in
  let tref = ref None in
  let timer =
    Timer.create e (fun () ->
        incr count;
        if !count < 3 then Timer.arm (Option.get !tref) (Time.ms 10))
  in
  tref := Some timer;
  Timer.arm timer (Time.ms 10);
  Engine.run e;
  Alcotest.(check int) "periodic re-arm" 3 !count

(* {2 Mtrace} *)

let test_mtrace_records_time () =
  let e = Engine.create () in
  let trace : string Mtrace.t = Mtrace.create e in
  ignore (Engine.schedule_at e (Time.ms 5) (fun () -> Mtrace.emit trace "a"));
  ignore (Engine.schedule_at e (Time.ms 9) (fun () -> Mtrace.emit trace "b"));
  Engine.run e;
  Alcotest.(check (list (pair int string)))
    "events with timestamps"
    [ (Time.ms 5, "a"); (Time.ms 9, "b") ]
    (Mtrace.events trace)

let test_mtrace_find_first () =
  let e = Engine.create () in
  let trace : int Mtrace.t = Mtrace.create e in
  List.iter
    (fun (t, v) ->
      ignore (Engine.schedule_at e t (fun () -> Mtrace.emit trace v)))
    [ (Time.ms 1, 10); (Time.ms 2, 20); (Time.ms 3, 20) ];
  Engine.run e;
  Alcotest.(check (option (pair int int)))
    "first match after cutoff"
    (Some (Time.ms 2, 20))
    (Mtrace.find_first trace ~after:(Time.ms 1) ~f:(fun a -> a = 20))

let test_mtrace_subscribe () =
  let e = Engine.create () in
  let trace : int Mtrace.t = Mtrace.create e in
  let seen = ref [] in
  Mtrace.subscribe trace (fun _ v -> seen := v :: !seen);
  ignore (Engine.schedule_at e (Time.ms 1) (fun () -> Mtrace.emit trace 1));
  ignore (Engine.schedule_at e (Time.ms 2) (fun () -> Mtrace.emit trace 2));
  Engine.run e;
  Alcotest.(check (list int)) "observer sees all" [ 1; 2 ] (List.rev !seen)

let emit_seq trace e values =
  List.iteri
    (fun i v ->
      ignore
        (Engine.schedule_at e (Time.ms (i + 1)) (fun () ->
             Mtrace.emit trace v)))
    values;
  Engine.run e

let test_mtrace_capacity_trims () =
  let e = Engine.create () in
  let trace : int Mtrace.t = Mtrace.create ~capacity:2 e in
  emit_seq trace e [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length capped" 2 (Mtrace.length trace);
  Alcotest.(check int) "dropped counts evictions" 3 (Mtrace.dropped trace);
  Alcotest.(check (list (pair int int)))
    "newest survive, oldest-first order"
    [ (Time.ms 4, 4); (Time.ms 5, 5) ]
    (Mtrace.events trace);
  (* find_first scans only the retained window. *)
  Alcotest.(check (option (pair int int)))
    "find_first sees retained only" None
    (Mtrace.find_first trace ~after:Time.zero ~f:(fun v -> v = 1))

let test_mtrace_unbounded_keeps_all () =
  let e = Engine.create () in
  let trace : int Mtrace.t = Mtrace.create e in
  emit_seq trace e [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "nothing dropped" 0 (Mtrace.dropped trace);
  Alcotest.(check int) "all retained" 5 (Mtrace.length trace)

let test_mtrace_capacity_observers_see_all () =
  let e = Engine.create () in
  let trace : int Mtrace.t = Mtrace.create ~capacity:1 e in
  let seen = ref [] in
  Mtrace.subscribe trace (fun _ v -> seen := v :: !seen);
  emit_seq trace e [ 1; 2; 3 ];
  Alcotest.(check (list int))
    "bound trims storage, not observers" [ 1; 2; 3 ] (List.rev !seen)

let test_mtrace_capacity_invalid () =
  let e = Engine.create () in
  List.iter
    (fun capacity ->
      match Mtrace.create ~capacity e with
      | (_ : int Mtrace.t) -> Alcotest.failf "capacity %d accepted" capacity
      | exception Invalid_argument _ -> ())
    [ 0; -1 ]

(* [Monitor.leaderless_intervals]'s documented precondition: a cleared
   trace yields no events to replay — replay-based monitors only see
   what happened since the last [clear]. *)
let test_mtrace_clear_drops_history () =
  let e = Engine.create () in
  let trace : int Mtrace.t = Mtrace.create e in
  emit_seq trace e [ 1; 2; 3 ];
  Mtrace.clear trace;
  Alcotest.(check int) "empty after clear" 0 (Mtrace.length trace);
  Alcotest.(check (list (pair int int))) "no replayable history" []
    (Mtrace.events trace)

let tests =
  [
    Alcotest.test_case "time: conversions" `Quick test_time_conversions;
    Alcotest.test_case "time: clamp" `Quick test_time_clamp;
    Alcotest.test_case "time: scale" `Quick test_time_scale;
    Alcotest.test_case "heap: ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap: peek" `Quick test_heap_peek;
    Alcotest.test_case "heap: random drain" `Quick test_heap_random_drain;
    Alcotest.test_case "engine: time ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine: FIFO on ties" `Quick test_engine_fifo_ties;
    Alcotest.test_case "engine: clock advances" `Quick
      test_engine_clock_advances;
    Alcotest.test_case "engine: cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine: run_until boundary" `Quick
      test_engine_run_until_boundary;
    Alcotest.test_case "engine: run_until with cancelled head" `Quick
      test_engine_run_until_cancelled_head;
    Alcotest.test_case "engine: nested scheduling" `Quick
      test_engine_schedule_during_run;
    Alcotest.test_case "engine: past rejected" `Quick test_engine_past_rejected;
    Alcotest.test_case "engine: counters" `Quick test_engine_counters;
    Alcotest.test_case "timer: fires once" `Quick test_timer_fires_once;
    Alcotest.test_case "timer: re-arm cancels previous" `Quick
      test_timer_rearm_cancels_previous;
    Alcotest.test_case "timer: disarm" `Quick test_timer_disarm;
    Alcotest.test_case "timer: remaining" `Quick test_timer_remaining;
    Alcotest.test_case "timer: armed_span persists" `Quick
      test_timer_armed_span_persists;
    Alcotest.test_case "timer: re-arm from callback" `Quick
      test_timer_rearm_from_callback;
    Alcotest.test_case "mtrace: records time" `Quick test_mtrace_records_time;
    Alcotest.test_case "mtrace: find_first" `Quick test_mtrace_find_first;
    Alcotest.test_case "mtrace: subscribe" `Quick test_mtrace_subscribe;
    Alcotest.test_case "mtrace: capacity trims" `Quick
      test_mtrace_capacity_trims;
    Alcotest.test_case "mtrace: unbounded keeps all" `Quick
      test_mtrace_unbounded_keeps_all;
    Alcotest.test_case "mtrace: bounded observers see all" `Quick
      test_mtrace_capacity_observers_see_all;
    Alcotest.test_case "mtrace: invalid capacity" `Quick
      test_mtrace_capacity_invalid;
    Alcotest.test_case "mtrace: clear drops history" `Quick
      test_mtrace_clear_drops_history;
  ]
