(* Unit tests for the statistics substrate. *)

module Rng = Stats.Rng
module Dist = Stats.Dist
module Welford = Stats.Welford
module Window = Stats.Window
module Summary = Stats.Summary
module Histogram = Stats.Histogram
module Timeseries = Stats.Timeseries

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b

(* {2 Rng} *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L () and b = Rng.create ~seed:42L () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create ~seed:1L () and b = Rng.create ~seed:2L () in
  let distinct = ref false in
  for _ = 1 to 16 do
    if Rng.int64 a <> Rng.int64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds differ" true !distinct

let test_rng_split_independent () =
  let root = Rng.create ~seed:3L () in
  let a = Rng.split root "alpha" and b = Rng.split root "beta" in
  let a' = Rng.split root "alpha" in
  Alcotest.(check int64) "same name same stream" (Rng.int64 a) (Rng.int64 a');
  Alcotest.(check bool)
    "different names differ" true
    (Rng.int64 a <> Rng.int64 b)

let test_rng_split_does_not_advance_parent () =
  let a = Rng.create ~seed:9L () and b = Rng.create ~seed:9L () in
  ignore (Rng.split a "x" : Rng.t);
  Alcotest.(check int64) "parent unchanged" (Rng.int64 a) (Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:5L () in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create () in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0 : int))

let test_rng_float_range () =
  let rng = Rng.create ~seed:11L () in
  for _ = 1 to 10_000 do
    let v = Rng.float rng in
    if v < 0. || v >= 1. then Alcotest.failf "out of range: %f" v
  done

let test_rng_float_mean () =
  let rng = Rng.create ~seed:13L () in
  let w = Welford.create () in
  for _ = 1 to 50_000 do
    Welford.add w (Rng.float rng)
  done;
  check_close ~eps:0.01 "uniform mean 0.5" 0.5 (Welford.mean w)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create ~seed:17L () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)
  done

let test_rng_bernoulli_rate () =
  let rng = Rng.create ~seed:19L () in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_close ~eps:0.01 "p=0.3" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:23L () in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 100 Fun.id) sorted

(* {2 Dist} *)

let sample_stats n f =
  let w = Welford.create () in
  for _ = 1 to n do
    Welford.add w (f ())
  done;
  w

let test_exponential_mean () =
  let rng = Rng.create ~seed:29L () in
  let w = sample_stats 100_000 (fun () -> Dist.exponential rng ~rate:4.) in
  check_close ~eps:0.01 "mean 1/rate" 0.25 (Welford.mean w)

let test_exponential_positive () =
  let rng = Rng.create ~seed:31L () in
  for _ = 1 to 10_000 do
    if Dist.exponential rng ~rate:0.5 < 0. then Alcotest.fail "negative"
  done

let test_normal_moments () =
  let rng = Rng.create ~seed:37L () in
  let w = sample_stats 100_000 (fun () -> Dist.normal rng ~mu:3. ~sigma:2.) in
  check_close ~eps:0.05 "mean" 3. (Welford.mean w);
  check_close ~eps:0.05 "std" 2. (Welford.std w)

let test_lognormal_mean_preserving () =
  let rng = Rng.create ~seed:41L () in
  let w =
    sample_stats 200_000 (fun () ->
        Dist.lognormal_mean_preserving rng ~sigma:0.5)
  in
  check_close ~eps:0.02 "mean 1" 1. (Welford.mean w)

let test_lognormal_zero_sigma () =
  let rng = Rng.create ~seed:43L () in
  check_float "sigma 0 gives exactly 1" 1.
    (Dist.lognormal_mean_preserving rng ~sigma:0.)

let test_truncated_normal_respects_floor () =
  let rng = Rng.create ~seed:47L () in
  for _ = 1 to 10_000 do
    let v = Dist.truncated_normal rng ~mu:0. ~sigma:5. ~lo:1. in
    if v < 1. then Alcotest.failf "below floor: %f" v
  done

let test_poisson_mean () =
  let rng = Rng.create ~seed:53L () in
  let w =
    sample_stats 50_000 (fun () -> float_of_int (Dist.poisson rng ~mean:6.))
  in
  check_close ~eps:0.1 "mean 6" 6. (Welford.mean w)

let test_poisson_large_mean_normal_approx () =
  let rng = Rng.create ~seed:59L () in
  let w =
    sample_stats 20_000 (fun () -> float_of_int (Dist.poisson rng ~mean:200.))
  in
  check_close ~eps:2. "mean 200" 200. (Welford.mean w)

let test_categorical_weights () =
  let rng = Rng.create ~seed:61L () in
  let counts = Array.make 3 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let i = Dist.categorical rng ~weights:[| 1.; 2.; 3. |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_close ~eps:0.02 "weight 1/6" (1. /. 6.)
    (float_of_int counts.(0) /. float_of_int n);
  check_close ~eps:0.02 "weight 3/6" 0.5
    (float_of_int counts.(2) /. float_of_int n)

(* {2 Welford} *)

let test_welford_basic () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float "mean" 5. (Welford.mean w);
  check_float "population variance" 4. (Welford.variance w);
  check_float "min" 2. (Welford.min w);
  check_float "max" 9. (Welford.max w);
  Alcotest.(check int) "count" 8 (Welford.count w)

let test_welford_empty () =
  let w = Welford.create () in
  check_float "empty mean" 0. (Welford.mean w);
  check_float "empty variance" 0. (Welford.variance w)

let test_welford_merge () =
  let all = Welford.create () in
  let a = Welford.create () and b = Welford.create () in
  List.iteri
    (fun i x ->
      Welford.add all x;
      if i mod 2 = 0 then Welford.add a x else Welford.add b x)
    [ 1.; 5.; 2.; 8.; 3.; 9.; 4.; 7.; 6.; 0. ];
  let merged = Welford.merge a b in
  check_close "merged mean" (Welford.mean all) (Welford.mean merged);
  check_close "merged variance" (Welford.variance all)
    (Welford.variance merged);
  check_float "merged min" (Welford.min all) (Welford.min merged)

(* {2 Window} *)

let test_window_eviction () =
  let w = Window.create ~capacity:3 in
  List.iter (Window.push w) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "bounded" 3 (Window.length w);
  Alcotest.(check (list (float 1e-9))) "oldest evicted" [ 2.; 3.; 4. ]
    (Window.to_list w)

let test_window_stats () =
  let w = Window.create ~capacity:10 in
  List.iter (Window.push w) [ 2.; 4.; 6. ];
  check_float "mean" 4. (Window.mean w);
  check_close "std" (sqrt (8. /. 3.)) (Window.std w);
  check_float "min" 2. (Window.min w);
  check_float "max" 6. (Window.max w)

let test_window_stats_after_eviction () =
  let w = Window.create ~capacity:2 in
  List.iter (Window.push w) [ 100.; 1.; 3. ];
  check_float "mean of survivors" 2. (Window.mean w);
  check_float "std of survivors" 1. (Window.std w)

let test_window_clear () =
  let w = Window.create ~capacity:4 in
  List.iter (Window.push w) [ 1.; 2. ];
  Window.clear w;
  Alcotest.(check int) "empty" 0 (Window.length w);
  check_float "mean resets" 0. (Window.mean w)

let test_window_numerical_stability () =
  (* Many pushes with eviction: running sums must not drift. *)
  let w = Window.create ~capacity:50 in
  for i = 1 to 100_000 do
    Window.push w (1e9 +. float_of_int (i mod 7))
  done;
  let expected_mean =
    let xs = Window.to_list w in
    List.fold_left ( +. ) 0. xs /. 50.
  in
  check_close ~eps:1e-3 "mean matches recomputation" expected_mean
    (Window.mean w);
  Alcotest.(check bool) "std finite and small" true (Window.std w < 3.)

let test_window_single_element_std () =
  let w = Window.create ~capacity:4 in
  Window.push w 42.;
  check_float "single sample std" 0. (Window.std w)

(* {2 Summary} *)

let test_summary_percentiles () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
  check_float "p0 = min" 1. (Summary.percentile s 0.);
  check_float "p100 = max" 10. (Summary.percentile s 100.);
  check_float "median" 5.5 (Summary.median s);
  check_float "mean" 5.5 (Summary.mean s)

let test_summary_cdf_at () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4. ] in
  check_float "cdf below" 0. (Summary.cdf_at s 0.5);
  check_float "cdf mid" 0.5 (Summary.cdf_at s 2.);
  check_float "cdf above" 1. (Summary.cdf_at s 10.)

let test_summary_cdf_monotone () =
  let s = Summary.of_list [ 5.; 1.; 3.; 2.; 4.; 9.; 7. ] in
  let points = Summary.cdf s ~points:20 in
  let rec check_sorted = function
    | (v1, p1) :: ((v2, p2) :: _ as rest) ->
        Alcotest.(check bool) "values non-decreasing" true (v2 >= v1);
        Alcotest.(check bool) "probs non-decreasing" true (p2 >= p1);
        check_sorted rest
    | _ -> ()
  in
  check_sorted points

let test_summary_empty () =
  let s = Summary.of_list [] in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.(check bool) "nan percentile" true
    (Float.is_nan (Summary.percentile s 50.))

(* {2 Histogram} *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.9; 9.99; -1.; 10.; 20. ];
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "total" 7 (Histogram.count h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0. ~hi:100. ~bins:4 in
  let lo, hi = Histogram.bin_bounds h 1 in
  check_float "bin lo" 25. lo;
  check_float "bin hi" 50. hi

(* {2 Timeseries} *)

let test_timeseries_bucketing () =
  let ts = Timeseries.create ~name:"t" () in
  Timeseries.push ts ~time:0.1 ~value:1.;
  Timeseries.push ts ~time:0.2 ~value:3.;
  Timeseries.push ts ~time:1.4 ~value:10.;
  Timeseries.push ts ~time:2.9 ~value:5.;
  let buckets = Timeseries.bucket ts ~width:1. ~agg:Timeseries.Mean in
  match buckets with
  | [ (_, b0); (_, b1); (_, b2) ] ->
      check_float "bucket 0 mean" 2. b0;
      check_float "bucket 1" 10. b1;
      check_float "bucket 2" 5. b2
  | l -> Alcotest.failf "expected 3 buckets, got %d" (List.length l)

let test_timeseries_values_in () =
  let ts = Timeseries.create () in
  List.iter
    (fun (t, v) -> Timeseries.push ts ~time:t ~value:v)
    [ (0., 1.); (1., 2.); (2., 3.); (3., 4.) ];
  Alcotest.(check (list (float 1e-9))) "window [1,3)" [ 2.; 3. ]
    (Timeseries.values_in ts ~lo:1. ~hi:3.)

let test_timeseries_aggregations () =
  let ts = Timeseries.create () in
  List.iter
    (fun v -> Timeseries.push ts ~time:0.5 ~value:v)
    [ 1.; 5.; 3. ];
  let get agg =
    match Timeseries.bucket ts ~width:1. ~agg with
    | [ (_, v) ] -> v
    | _ -> Alcotest.fail "expected one bucket"
  in
  check_float "sum" 9. (get Timeseries.Sum);
  check_float "max" 5. (get Timeseries.Max);
  check_float "min" 1. (get Timeseries.Min);
  check_float "last" 3. (get Timeseries.Last);
  check_float "count" 3. (get Timeseries.Count)

(* {2 Mergeable accumulators (campaign sharding)} *)

(* NaN-tolerant closeness with a relative term, for property checks over
   arbitrary magnitudes. *)
let close a b =
  (Float.is_nan a && Float.is_nan b)
  || abs_float (a -. b) <= 1e-9 *. (1. +. abs_float a +. abs_float b)

let prop_welford_merge_matches_concat =
  QCheck.Test.make ~count:200
    ~name:"welford: merge matches single pass over concatenation"
    QCheck.(
      pair
        (list (float_range (-1e6) 1e6))
        (list (float_range (-1e6) 1e6)))
    (fun (xs, ys) ->
      let wa = Welford.create ()
      and wb = Welford.create ()
      and all = Welford.create () in
      List.iter
        (fun x ->
          Welford.add wa x;
          Welford.add all x)
        xs;
      List.iter
        (fun y ->
          Welford.add wb y;
          Welford.add all y)
        ys;
      let m = Welford.merge wa wb in
      Welford.count m = Welford.count all
      && close (Welford.mean m) (Welford.mean all)
      && close (Welford.variance m) (Welford.variance all)
      && close (Welford.min m) (Welford.min all)
      && close (Welford.max m) (Welford.max all))

let test_histogram_merge () =
  let rng = Rng.create ~seed:99L () in
  let fresh () = Histogram.create ~lo:0. ~hi:100. ~bins:10 in
  let a = fresh () and b = fresh () and all = fresh () in
  for _ = 1 to 500 do
    (* Spill beyond [lo, hi) on both sides to exercise under/overflow. *)
    let x = Rng.uniform rng (-20.) 120. in
    let target = if Rng.bool rng then a else b in
    Histogram.add target x;
    Histogram.add all x
  done;
  let m = Histogram.merge a b in
  Alcotest.(check int) "total" (Histogram.count all) (Histogram.count m);
  Alcotest.(check int) "underflow" (Histogram.underflow all)
    (Histogram.underflow m);
  Alcotest.(check int) "overflow" (Histogram.overflow all)
    (Histogram.overflow m);
  for i = 0 to 9 do
    Alcotest.(check int)
      (Printf.sprintf "bin %d" i)
      (Histogram.bin_count all i) (Histogram.bin_count m i)
  done;
  (* Inputs are not consumed by the merge. *)
  Alcotest.(check int) "inputs untouched" (Histogram.count all)
    (Histogram.count a + Histogram.count b)

let test_histogram_merge_layout_mismatch () =
  let a = Histogram.create ~lo:0. ~hi:100. ~bins:10 in
  List.iter
    (fun b ->
      match Histogram.merge a b with
      | _ -> Alcotest.fail "expected Invalid_argument on layout mismatch"
      | exception Invalid_argument _ -> ())
    [
      Histogram.create ~lo:1. ~hi:100. ~bins:10;
      Histogram.create ~lo:0. ~hi:50. ~bins:10;
      Histogram.create ~lo:0. ~hi:100. ~bins:20;
    ]

let test_summary_of_parts_exact () =
  let rng = Rng.create ~seed:123L () in
  let parts =
    List.map
      (fun n -> List.init n (fun _ -> Rng.uniform rng (-50.) 50.))
      [ 17; 0; 41; 1; 23 ]
  in
  let merged = Summary.of_parts (List.map Summary.of_list parts) in
  let whole = Summary.of_list (List.concat parts) in
  Alcotest.(check int) "count" (Summary.count whole) (Summary.count merged);
  (* Exact: a summary retains every sample, so rebuilding from parts is
     the same sorted array — identical to the last bit. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "p%g" q)
        (Summary.percentile whole q)
        (Summary.percentile merged q))
    [ 0.; 10.; 25.; 50.; 75.; 90.; 99.; 100. ];
  Alcotest.(check (float 0.)) "mean" (Summary.mean whole) (Summary.mean merged);
  Alcotest.(check (float 0.)) "std" (Summary.std whole) (Summary.std merged)

let tests =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seed changes stream" `Quick
      test_rng_seed_changes_stream;
    Alcotest.test_case "rng: named splits" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: split keeps parent" `Quick
      test_rng_split_does_not_advance_parent;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng: int rejects 0" `Quick test_rng_int_rejects_nonpositive;
    Alcotest.test_case "rng: float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng: float mean" `Slow test_rng_float_mean;
    Alcotest.test_case "rng: bernoulli extremes" `Quick
      test_rng_bernoulli_extremes;
    Alcotest.test_case "rng: bernoulli rate" `Slow test_rng_bernoulli_rate;
    Alcotest.test_case "rng: shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "dist: exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "dist: exponential positive" `Quick
      test_exponential_positive;
    Alcotest.test_case "dist: normal moments" `Slow test_normal_moments;
    Alcotest.test_case "dist: lognormal mean-preserving" `Slow
      test_lognormal_mean_preserving;
    Alcotest.test_case "dist: lognormal sigma 0" `Quick
      test_lognormal_zero_sigma;
    Alcotest.test_case "dist: truncated normal floor" `Quick
      test_truncated_normal_respects_floor;
    Alcotest.test_case "dist: poisson mean" `Slow test_poisson_mean;
    Alcotest.test_case "dist: poisson normal approx" `Slow
      test_poisson_large_mean_normal_approx;
    Alcotest.test_case "dist: categorical weights" `Slow
      test_categorical_weights;
    Alcotest.test_case "welford: basic moments" `Quick test_welford_basic;
    Alcotest.test_case "welford: empty" `Quick test_welford_empty;
    Alcotest.test_case "welford: merge" `Quick test_welford_merge;
    Alcotest.test_case "window: eviction" `Quick test_window_eviction;
    Alcotest.test_case "window: stats" `Quick test_window_stats;
    Alcotest.test_case "window: stats after eviction" `Quick
      test_window_stats_after_eviction;
    Alcotest.test_case "window: clear" `Quick test_window_clear;
    Alcotest.test_case "window: numerical stability" `Slow
      test_window_numerical_stability;
    Alcotest.test_case "window: single sample std" `Quick
      test_window_single_element_std;
    Alcotest.test_case "summary: percentiles" `Quick test_summary_percentiles;
    Alcotest.test_case "summary: cdf_at" `Quick test_summary_cdf_at;
    Alcotest.test_case "summary: cdf monotone" `Quick test_summary_cdf_monotone;
    Alcotest.test_case "summary: empty" `Quick test_summary_empty;
    Alcotest.test_case "summary: of_parts exact merge" `Quick
      test_summary_of_parts_exact;
    Alcotest.test_case "histogram: binning" `Quick test_histogram_binning;
    Alcotest.test_case "histogram: merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram: merge layout mismatch" `Quick
      test_histogram_merge_layout_mismatch;
    QCheck_alcotest.to_alcotest prop_welford_merge_matches_concat;
    Alcotest.test_case "histogram: bounds" `Quick test_histogram_bounds;
    Alcotest.test_case "timeseries: bucketing" `Quick test_timeseries_bucketing;
    Alcotest.test_case "timeseries: window query" `Quick
      test_timeseries_values_in;
    Alcotest.test_case "timeseries: aggregations" `Quick
      test_timeseries_aggregations;
  ]
