(* Tests for log compaction and InstallSnapshot catch-up. *)

module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Time = Des.Time
module Node_id = Netsim.Node_id
module Log = Raft.Log

(* {2 Log compaction unit tests} *)

let filled_log n =
  let l = Log.create () in
  for _ = 1 to n do
    ignore (Log.append_new l ~term:1 Log.Noop)
  done;
  l

let test_compact_moves_boundary () =
  let l = filled_log 10 in
  Log.compact l ~upto:6;
  Alcotest.(check int) "boundary" 6 (Log.snapshot_index l);
  Alcotest.(check int) "boundary term" 1 (Log.snapshot_term l);
  Alcotest.(check int) "entries kept" 4 (Log.length l);
  Alcotest.(check int) "last index unchanged" 10 (Log.last_index l);
  Alcotest.(check int) "first available" 7 (Log.first_available l);
  Alcotest.(check (option int)) "compacted entries unavailable" None
    (Log.term_at l 3);
  Alcotest.(check (option int)) "boundary queryable" (Some 1) (Log.term_at l 6);
  Alcotest.(check (option int)) "suffix intact" (Some 1) (Log.term_at l 9)

let test_compact_idempotent_and_bounds () =
  let l = filled_log 5 in
  Log.compact l ~upto:3;
  Log.compact l ~upto:2 (* no-op: below the boundary *);
  Alcotest.(check int) "boundary unmoved" 3 (Log.snapshot_index l);
  Alcotest.(check bool) "beyond end rejected" true
    (try
       Log.compact l ~upto:99;
       false
     with Invalid_argument _ -> true)

let test_append_after_compaction () =
  let l = filled_log 5 in
  Log.compact l ~upto:5;
  let e = Log.append_new l ~term:2 Log.Noop in
  Alcotest.(check int) "indices continue" 6 e.Log.index;
  Alcotest.(check int) "last term" 2 (Log.last_term l)

let test_try_append_below_boundary () =
  let l = filled_log 8 in
  Log.compact l ~upto:6;
  (* A stale append whose prev is compacted: the overlap is committed,
     so it must succeed without touching the log. *)
  let entries =
    Array.init 3 (fun i -> { Log.term = 1; index = 5 + i; command = Log.Noop })
  in
  (match Log.try_append l ~prev_index:4 ~prev_term:1 ~entries with
  | `Ok covered -> Alcotest.(check int) "covered" 7 covered
  | `Conflict _ -> Alcotest.fail "compacted prefix must match");
  Alcotest.(check int) "log untouched" 8 (Log.last_index l)

let test_install_snapshot_resets_log () =
  let l = filled_log 4 in
  Log.install_snapshot l ~index:20 ~term:7;
  Alcotest.(check int) "boundary" 20 (Log.snapshot_index l);
  Alcotest.(check int) "no entries" 0 (Log.length l);
  Alcotest.(check int) "last index = boundary" 20 (Log.last_index l);
  Alcotest.(check int) "last term from snapshot" 7 (Log.last_term l);
  let e = Log.append_new l ~term:8 Log.Noop in
  Alcotest.(check int) "appends continue past boundary" 21 e.Log.index

let test_slice_skips_compacted () =
  let l = filled_log 10 in
  Log.compact l ~upto:5;
  let s = Log.slice l ~from:3 ~max:100 in
  Alcotest.(check int) "only available entries" 5 (Array.length s);
  if Array.length s > 0 then
    Alcotest.(check int) "starts after boundary" 6 s.(0).Log.index
  else Alcotest.fail "expected entries"

(* {2 Store snapshot serialization} *)

let test_store_snapshot_roundtrip () =
  let s = Kvsm.Store.create () in
  List.iter
    (fun (k, v) ->
      ignore (Kvsm.Store.apply_command s (Kvsm.Command.Put { key = k; value = v })))
    [ ("a", "1"); ("b:with:colons", "2:2"); ("", "empty-key") ];
  match Kvsm.Store.of_serialized (Kvsm.Store.serialize s) with
  | Error e -> Alcotest.fail e
  | Ok restored ->
      Alcotest.(check string) "identical state" (Kvsm.Store.state_digest s)
        (Kvsm.Store.state_digest restored);
      Alcotest.(check int) "applied count preserved"
        (Kvsm.Store.applied_count s)
        (Kvsm.Store.applied_count restored)

let test_store_snapshot_rejects_garbage () =
  List.iter
    (fun payload ->
      match Kvsm.Store.of_serialized payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" payload)
    [ ""; "xyz"; "3\n9:short" ]

(* {2 End-to-end snapshot catch-up} *)

let lan () = Netsim.Conditions.(constant (profile ~rtt_ms:10. ~jitter:0.02 ()))

let make_cluster ?(threshold = 20) () =
  let config =
    Raft.Config.with_snapshots ~threshold (Raft.Config.static ())
  in
  let c = Cluster.create ~seed:31L ~n:3 ~config ~conditions:(lan ()) () in
  Cluster.start c;
  c

let write_batch c ~from_seq ~n =
  let committed = ref 0 in
  for i = from_seq to from_seq + n - 1 do
    (match
       Cluster.submit_target c
         ~payload:
           (Kvsm.Command.to_payload
              (Kvsm.Command.Put
                 { key = Printf.sprintf "k%d" i; value = Printf.sprintf "v%d" i }))
         ~client_id:1 ~seq:i
         ~on_result:(fun ~committed:ok -> if ok then incr committed)
     with
    | `Accepted -> ()
    | `Not_leader _ -> ());
    Cluster.run_for c (Time.ms 20)
  done;
  Cluster.run_for c (Time.sec 1);
  !committed

let test_log_compacts_under_load () =
  let c = make_cluster ~threshold:20 () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let n = write_batch c ~from_seq:1 ~n:60 in
  Alcotest.(check int) "all committed" 60 n;
  List.iter
    (fun id ->
      let log = Raft.Server.log (Raft.Node.server (Cluster.node c id)) in
      Alcotest.(check bool)
        (Printf.sprintf "node %d compacted (boundary %d)"
           (Node_id.to_int id) (Log.snapshot_index log))
        true
        (Log.snapshot_index log > 0);
      Alcotest.(check bool) "log bounded" true (Log.length log <= 41))
    (Cluster.node_ids c)

let test_laggard_catches_up_via_snapshot () =
  let c = make_cluster ~threshold:10 () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let leader =
    match Cluster.leader c with Some l -> Raft.Node.id l | None -> assert false
  in
  let laggard =
    List.find (fun id -> not (Node_id.equal id leader)) (Cluster.node_ids c)
  in
  (* Disconnect the laggard, then commit far past the compaction point. *)
  Fault.pause c laggard;
  let n = write_batch c ~from_seq:1 ~n:50 in
  Alcotest.(check int) "committed without the laggard" 50 n;
  let leader_log = Raft.Server.log (Raft.Node.server (Cluster.node c leader)) in
  Alcotest.(check bool) "leader compacted past the laggard" true
    (Log.snapshot_index leader_log > 0);
  (* Reconnect: the laggard is behind the boundary, so only an
     InstallSnapshot can catch it up. *)
  Fault.recover c laggard;
  Cluster.run_for c (Time.sec 5);
  Alcotest.(check string) "laggard replica converged"
    (Kvsm.Store.state_digest (Cluster.store c leader))
    (Kvsm.Store.state_digest (Cluster.store c laggard));
  let server = Raft.Node.server (Cluster.node c laggard) in
  Alcotest.(check bool) "laggard adopted a snapshot boundary" true
    (Log.snapshot_index (Raft.Server.log server) > 0);
  Alcotest.(check int) "laggard commit caught up"
    (Raft.Server.commit_index (Raft.Node.server (Cluster.node c leader)))
    (Raft.Server.commit_index server)

let test_crash_restart_with_snapshot () =
  let c = make_cluster ~threshold:10 () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let n = write_batch c ~from_seq:1 ~n:40 in
  Alcotest.(check int) "committed" 40 n;
  let leader =
    match Cluster.leader c with Some l -> Raft.Node.id l | None -> assert false
  in
  let victim =
    List.find (fun id -> not (Node_id.equal id leader)) (Cluster.node_ids c)
  in
  Alcotest.(check bool) "victim had compacted" true
    (Log.snapshot_index (Raft.Server.log (Raft.Node.server (Cluster.node c victim))) > 0);
  Fault.crash_and_restart c victim ~downtime:(Time.sec 1);
  Cluster.run_for c (Time.sec 3);
  (* The replica is rebuilt from its persisted snapshot + log suffix. *)
  Alcotest.(check string) "restored replica converged"
    (Kvsm.Store.state_digest (Cluster.store c leader))
    (Kvsm.Store.state_digest (Cluster.store c victim))

let test_snapshots_preserve_liveness_under_failover () =
  let c = make_cluster ~threshold:15 () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  ignore (write_batch c ~from_seq:1 ~n:30);
  (match Fault.fail_and_measure c () with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let n = write_batch c ~from_seq:100 ~n:30 in
  Alcotest.(check bool) "writes continue after failover with snapshots" true
    (n >= 28);
  Cluster.run_for c (Time.sec 3);
  let digests =
    List.filter_map
      (fun id ->
        if Raft.Node.is_paused (Cluster.node c id) then None
        else Some (Kvsm.Store.state_digest (Cluster.store c id)))
      (Cluster.node_ids c)
  in
  match digests with
  | d :: rest -> List.iter (Alcotest.(check string) "converged" d) rest
  | [] -> Alcotest.fail "no stores"

let tests =
  [
    Alcotest.test_case "log: compact moves boundary" `Quick
      test_compact_moves_boundary;
    Alcotest.test_case "log: compact bounds" `Quick
      test_compact_idempotent_and_bounds;
    Alcotest.test_case "log: append after compaction" `Quick
      test_append_after_compaction;
    Alcotest.test_case "log: stale append below boundary" `Quick
      test_try_append_below_boundary;
    Alcotest.test_case "log: install snapshot" `Quick
      test_install_snapshot_resets_log;
    Alcotest.test_case "log: slice skips compacted" `Quick
      test_slice_skips_compacted;
    Alcotest.test_case "store: snapshot roundtrip" `Quick
      test_store_snapshot_roundtrip;
    Alcotest.test_case "store: snapshot rejects garbage" `Quick
      test_store_snapshot_rejects_garbage;
    Alcotest.test_case "e2e: log compacts under load" `Quick
      test_log_compacts_under_load;
    Alcotest.test_case "e2e: laggard catch-up via snapshot" `Quick
      test_laggard_catches_up_via_snapshot;
    Alcotest.test_case "e2e: crash-restart with snapshot" `Quick
      test_crash_restart_with_snapshot;
    Alcotest.test_case "e2e: liveness under failover" `Quick
      test_snapshots_preserve_liveness_under_failover;
  ]
