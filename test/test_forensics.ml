(* The causal forensics layer: cause-ID packing, the bounded ring and
   its eviction/merge semantics, the time-series recorder (cadence,
   exports, shard merge, digest neutrality), the explain analysis over
   synthetic and live rings (with a golden file pinning the rendered
   output), and the flight recorder attached to invariant violations. *)

module Cause = Telemetry.Cause
module Forensics = Telemetry.Forensics
module Recorder = Telemetry.Recorder
module Metrics = Telemetry.Metrics
module Q = QCheck

let to_alcotest = QCheck_alcotest.to_alcotest

(* {1 Cause packing} *)

let kinds =
  [
    (Cause.Election_timer, "et");
    (Cause.Heartbeat_timer, "hb");
    (Cause.Client, "cl");
    (Cause.Fault, "ft");
    (Cause.Internal, "in");
  ]

let test_cause_roundtrip () =
  List.iter
    (fun (k, tag) ->
      let c = Cause.make ~kind:k ~node:7 ~term:42 ~seq:12345 in
      Alcotest.(check bool) "not none" false (Cause.is_none c);
      Alcotest.(check string) "kind tag" tag (Cause.kind_name (Cause.kind c));
      Alcotest.(check int) "node" 7 (Cause.node c);
      Alcotest.(check int) "term" 42 (Cause.term c);
      Alcotest.(check int) "seq" 12345 (Cause.seq c))
    kinds;
  (* Field extremes survive, one past the field wraps. *)
  let c = Cause.make ~kind:Cause.Client ~node:4095 ~term:32767 ~seq:0xFFFF_FFFF in
  Alcotest.(check int) "node max" 4095 (Cause.node c);
  Alcotest.(check int) "term max" 32767 (Cause.term c);
  Alcotest.(check int) "seq max" 0xFFFF_FFFF (Cause.seq c);
  let w = Cause.make ~kind:Cause.Client ~node:4096 ~term:32768 ~seq:0 in
  Alcotest.(check int) "node wraps" 0 (Cause.node w);
  Alcotest.(check int) "term wraps" 0 (Cause.term w)

let test_cause_to_string () =
  Alcotest.(check string) "none renders -" "-" (Cause.to_string Cause.none);
  Alcotest.(check bool) "none is none" true (Cause.is_none Cause.none);
  let c = Cause.make ~kind:Cause.Election_timer ~node:2 ~term:7 ~seq:1234 in
  Alcotest.(check string) "packed render" "et:n2/t7#1234" (Cause.to_string c)

let prop_cause_roundtrip =
  Q.Test.make ~count:200 ~name:"cause pack/unpack round-trips in-field values"
    Q.(quad (int_bound 4) (int_bound 4095) (int_bound 32767) (int_bound 0xFFFFFF))
    (fun (ki, node, term, seq) ->
      let kind = fst (List.nth kinds ki) in
      let c = Cause.make ~kind ~node ~term ~seq in
      (not (Cause.is_none c))
      && Cause.kind c = kind && Cause.node c = node && Cause.term c = term
      && Cause.seq c = seq)

(* {1 The ring} *)

let record_n ring n =
  for i = 1 to n do
    let cause =
      Forensics.new_cause ring ~kind:Cause.Internal ~node:0 ~term:1
    in
    Forensics.record ring ~at:(Des.Time.ms i) ~node:0 ~term:1
      ~cause ~parent:Cause.none
      (Forensics.Role { role = Printf.sprintf "r%d" i })
  done

let test_ring_eviction_order () =
  let ring = Forensics.create ~capacity:4 () in
  record_n ring 7;
  Alcotest.(check int) "length capped" 4 (Forensics.length ring);
  Alcotest.(check int) "dropped counts evictions" 3 (Forensics.dropped ring);
  (* Oldest-first: the survivors are records 4..7 in insertion order. *)
  let seqs =
    List.map (fun (r : Forensics.record) -> Cause.seq r.cause)
      (Forensics.records ring)
  in
  Alcotest.(check (list int)) "oldest evicted first" [ 4; 5; 6; 7 ] seqs;
  let tail = Forensics.tail ring 2 in
  Alcotest.(check int) "tail length" 2 (List.length tail);
  Alcotest.(check (list string)) "tail = last renders" tail
    (match List.rev (Forensics.render ring) with
    | b :: a :: _ -> [ a; b ]
    | _ -> [])

let test_ring_capacity_validation () =
  match Forensics.create ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

let test_forensics_disabled_inert () =
  List.iter
    (fun ring ->
      Alcotest.(check bool) "disabled" false (Forensics.enabled ring);
      let c = Forensics.new_cause ring ~kind:Cause.Fault ~node:3 ~term:9 in
      Alcotest.(check bool) "new_cause is none" true (Cause.is_none c);
      Forensics.record ring ~at:Des.Time.zero ~node:0 ~term:0 ~cause:c
        ~parent:Cause.none Forensics.Paused;
      Alcotest.(check int) "nothing retained" 0 (Forensics.length ring);
      Alcotest.(check int) "nothing dropped" 0 (Forensics.dropped ring))
    [ Forensics.noop; Forensics.create ~enabled:false () ]

let test_merge_rendered_prefixes () =
  let merged =
    Forensics.merge_rendered [ [ "a"; "b" ]; []; [ "c" ] ]
  in
  Alcotest.(check (list string))
    "shard-order concatenation with s<i> prefixes"
    [ "s0 a"; "s0 b"; "s2 c" ]
    merged;
  Alcotest.(check (list string)) "empty merge" [] (Forensics.merge_rendered [])

(* {1 Recorder} *)

let test_recorder_cadence () =
  let engine = Des.Engine.create ~seed:1L () in
  let m = Metrics.create ~enabled:true () in
  let c = Metrics.counter m ~scope:"test" ~name:"ticks" () in
  let g = Metrics.gauge m ~scope:"test" ~name:"level" () in
  let r = Recorder.create ~every:(Des.Time.ms 10) () in
  Alcotest.(check bool) "enabled" true (Recorder.enabled r);
  Recorder.attach r engine (fun () -> Metrics.snapshot m);
  Metrics.Counter.add c 3;
  Metrics.Gauge.set g 2.5;
  Des.Engine.run_for engine (Des.Time.ms 100);
  Alcotest.(check int) "one sample per period" 10 (Recorder.samples r);
  let dump = Recorder.dump r in
  Alcotest.(check int) "one series per key" 2 (List.length dump);
  List.iter
    (fun (_, samples) ->
      Alcotest.(check int) "series length" 10 (Array.length samples))
    dump;
  (* Exports are well-formed. *)
  let csv = Recorder.to_csv dump in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 4 && String.sub csv 0 4 = "t_ms");
  (* header + 10 sampled instants *)
  Alcotest.(check int) "csv rows" 11
    (List.length
       (String.split_on_char '\n' (String.trim csv)));
  let om = Recorder.to_openmetrics dump in
  let om = String.trim om in
  let eof = "# EOF" in
  Alcotest.(check string) "openmetrics terminator" eof
    (String.sub om (String.length om - String.length eof) (String.length eof));
  let window = Recorder.window r 3 in
  Alcotest.(check int) "window lines" 3 (List.length window)

let test_recorder_disabled_inert () =
  let engine = Des.Engine.create ~seed:1L () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "disabled" false (Recorder.enabled r);
      Recorder.attach r engine (fun () -> Metrics.snapshot Metrics.noop);
      Des.Engine.run_for engine (Des.Time.ms 50);
      Alcotest.(check int) "no samples" 0 (Recorder.samples r);
      Alcotest.(check int) "empty dump" 0 (List.length (Recorder.dump r));
      Alcotest.(check (list string)) "empty window" [] (Recorder.window r 4))
    [ Recorder.noop; Recorder.create ~enabled:false ~every:(Des.Time.ms 10) () ]

let test_recorder_merge_prefixes () =
  let part i = [ (Printf.sprintf "k%d" i, [| (1., float_of_int i) |]) ] in
  let merged = Recorder.merge [ part 0; part 1 ] in
  Alcotest.(check (list string))
    "keys prefixed by shard"
    [ "s0/k0"; "s1/k1" ]
    (List.map fst merged)

(* {1 Campaign determinism with the recorder on} *)

(* Acceptance: on a pinned shard plan the merged time series — and the
   probe-trace digest — are functions of the seed alone, equal at
   [--jobs 1] and [--jobs 4]; and turning the recorder on does not
   perturb the digest (its sampling events draw no randomness). *)
let fig4_recorded ~seed ~jobs =
  Scenarios.Fig4.run ~seed ~failures:6 ~shards:4 ~jobs ~instrument:true
    ~record:(Des.Time.ms 500)
    ~config:(Raft.Config.dynatune ())
    ()

let test_fig4_recorder_jobs_invariant () =
  let r1 = fig4_recorded ~seed:11L ~jobs:1 in
  let r4 = fig4_recorded ~seed:11L ~jobs:4 in
  let csv1 = Recorder.to_csv r1.Scenarios.Fig4.recorder in
  Alcotest.(check bool) "series non-trivial" true (String.length csv1 > 100);
  Alcotest.(check string) "recorder jobs 1 = jobs 4" csv1
    (Recorder.to_csv r4.Scenarios.Fig4.recorder);
  Alcotest.(check int64) "digest jobs 1 = jobs 4" r1.Scenarios.Fig4.digest
    r4.Scenarios.Fig4.digest;
  (* Digest neutrality: the same plan without the recorder agrees. *)
  let bare =
    Scenarios.Fig4.run ~seed:11L ~failures:6 ~shards:4 ~jobs:1
      ~instrument:true
      ~config:(Raft.Config.dynatune ())
      ()
  in
  Alcotest.(check int64) "recorder does not perturb the digest"
    bare.Scenarios.Fig4.digest r1.Scenarios.Fig4.digest

(* Same contract on the geo WAN: fig8 digests and recorder series are
   functions of (seed, shard plan) with the recorder on. *)
let test_fig8_recorder_jobs_invariant () =
  let run jobs =
    Scenarios.Fig8.run ~seed:11L ~failures:4 ~shards:4 ~jobs ~instrument:true
      ~record:(Des.Time.ms 500)
      ~config:(Raft.Config.dynatune ())
      ()
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check int64) "fig8 digest jobs 1 = jobs 4"
    r1.Scenarios.Fig4.digest r4.Scenarios.Fig4.digest;
  Alcotest.(check string) "fig8 recorder jobs 1 = jobs 4"
    (Recorder.to_csv r1.Scenarios.Fig4.recorder)
    (Recorder.to_csv r4.Scenarios.Fig4.recorder)

let prop_recorder_jobs_invariant =
  Q.Test.make ~count:3
    ~name:"fig4 recorder series: jobs 1 = jobs 2 on a pinned plan"
    Q.(int_bound 1000)
    (fun seed ->
      let seed = Int64.of_int (seed + 1) in
      let run jobs =
        let r =
          Scenarios.Fig4.run ~seed ~failures:4 ~shards:2 ~jobs
            ~instrument:true
            ~record:(Des.Time.ms 500)
            ~config:(Raft.Config.dynatune ())
            ()
        in
        Recorder.to_csv r.Scenarios.Fig4.recorder
      in
      String.equal (run 1) (run 2))

(* {1 Explain: synthetic ring} *)

(* A hand-built ring staging three elections: a first (no prior leader),
   a justified failover (n0 paused first), and a spurious deposition
   (n0 back up, yet n2 campaigns anyway). *)
let synthetic_ring () =
  let c ~kind ~node ~term ~seq = Cause.make ~kind ~node ~term ~seq in
  let ms = Des.Time.ms in
  let r ~at ~node ~term ~cause ?(parent = Cause.none) ev =
    { Forensics.at = ms at; node; term; cause; parent; ev }
  in
  let boot = c ~kind:Cause.Internal ~node:0 ~term:0 ~seq:1 in
  let e1 = c ~kind:Cause.Election_timer ~node:0 ~term:0 ~seq:2 in
  let f1 = c ~kind:Cause.Fault ~node:0 ~term:1 ~seq:3 in
  let e2 = c ~kind:Cause.Election_timer ~node:1 ~term:1 ~seq:4 in
  let f2 = c ~kind:Cause.Fault ~node:0 ~term:2 ~seq:5 in
  let e3 = c ~kind:Cause.Election_timer ~node:2 ~term:2 ~seq:6 in
  [
    (* Election 1: cold start, n0 wins term 1. *)
    r ~at:150 ~node:0 ~term:0 ~cause:e1 ~parent:boot
      (Forensics.Timeout
         {
           randomized = ms 150;
           et = ms 1000;
           h = ms 100;
           k = 1;
         });
    r ~at:150 ~node:0 ~term:1 ~cause:e1 (Forensics.Campaign { pre = false });
    r ~at:150 ~node:0 ~term:1 ~cause:e1 (Forensics.Role { role = "candidate" });
    r ~at:200 ~node:0 ~term:1 ~cause:e1
      (Forensics.Vote { from = 1; granted = true; pre = false });
    r ~at:200 ~node:0 ~term:1 ~cause:e1 (Forensics.Role { role = "leader" });
    (* n1 tunes from measurements. *)
    r ~at:5000 ~node:1 ~term:1
      ~cause:(c ~kind:Cause.Internal ~node:1 ~term:1 ~seq:7)
      (Forensics.Tuner
         {
           rtt_ms = 100.;
           loss = 0.;
           et = ms 120;
           h = ms 120;
           k = 1;
           reason = "periodic";
         });
    (* Election 2: n0 pauses, n1 takes over — justified. *)
    r ~at:9000 ~node:0 ~term:1 ~cause:f1 Forensics.Paused;
    r ~at:9150 ~node:1 ~term:1 ~cause:e2
      (Forensics.Timeout
         {
           randomized = ms 140;
           et = ms 1000;
           h = ms 100;
           k = 1;
         });
    r ~at:9150 ~node:1 ~term:2 ~cause:e2 (Forensics.Campaign { pre = false });
    r ~at:9200 ~node:1 ~term:2 ~cause:e2
      (Forensics.Vote { from = 2; granted = true; pre = false });
    r ~at:9200 ~node:1 ~term:2 ~cause:e2 (Forensics.Role { role = "leader" });
    r ~at:9500 ~node:0 ~term:2 ~cause:f2 Forensics.Resumed;
    (* Election 3: n1 is live, yet n2 deposes it — spurious. *)
    r ~at:12000 ~node:2 ~term:2 ~cause:e3
      (Forensics.Timeout
         {
           randomized = ms 130;
           et = ms 1000;
           h = ms 100;
           k = 1;
         });
    r ~at:12000 ~node:2 ~term:3 ~cause:e3 (Forensics.Campaign { pre = false });
    r ~at:12050 ~node:2 ~term:3 ~cause:e3 (Forensics.Role { role = "leader" });
  ]

let test_explain_analyze_synthetic () =
  let elections = Scenarios.Explain.analyze (synthetic_ring ()) in
  Alcotest.(check int) "three elections" 3 (List.length elections);
  let e1 = List.nth elections 0
  and e2 = List.nth elections 1
  and e3 = List.nth elections 2 in
  Alcotest.(check int) "first winner" 0 e1.Scenarios.Explain.winner;
  Alcotest.(check bool) "cold start justified" true e1.Scenarios.Explain.justified;
  Alcotest.(check (option int)) "no prior leader" None
    e1.Scenarios.Explain.prior_leader;
  (* The chain reassembles every record stamped with the election cause. *)
  Alcotest.(check int) "chain length" 5
    (List.length e1.Scenarios.Explain.chain);
  Alcotest.(check bool) "chain starts at the timeout" true
    (match (List.hd e1.Scenarios.Explain.chain).Forensics.ev with
    | Forensics.Timeout _ -> true
    | _ -> false);
  Alcotest.(check int) "failover winner" 1 e2.Scenarios.Explain.winner;
  Alcotest.(check bool) "failover justified" true e2.Scenarios.Explain.justified;
  Alcotest.(check (option int)) "deposed the paused leader" (Some 0)
    e2.Scenarios.Explain.prior_leader;
  Alcotest.(check bool) "provenance = last tuner decision" true
    (match e2.Scenarios.Explain.provenance with
    | Some { Forensics.ev = Forensics.Tuner _; node = 1; _ } -> true
    | _ -> false);
  Alcotest.(check bool) "live leader deposed is spurious" false
    e3.Scenarios.Explain.justified;
  Alcotest.(check (option int)) "spurious names the live leader" (Some 1)
    e3.Scenarios.Explain.prior_leader

let read_golden name =
  let path = Filename.concat "golden" name in
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_explain_print_golden () =
  let rendered =
    Format.asprintf "%a" Scenarios.Explain.print
      (Scenarios.Explain.analyze (synthetic_ring ()))
  in
  (* Regenerate with: DYNATUNE_GOLDEN_REGEN=1 (run from test/). *)
  if Sys.getenv_opt "DYNATUNE_GOLDEN_REGEN" <> None then begin
    let oc = open_out_bin "golden/explain.golden.txt" in
    output_string oc rendered;
    close_out oc
  end;
  Alcotest.(check string) "explain output pinned" (read_golden "explain.golden.txt")
    rendered

(* {1 Explain: live ring} *)

(* Acceptance: the analysis reconstructs complete chains from a real
   run — every leadership change has a cause, its chain contains the
   timeout and campaign that produced it and ends in the winning role
   change, and every post-kill election is classified justified. *)
let test_explain_live_chains_complete () =
  let records = Scenarios.Explain.run ~failures:1 () in
  let elections = Scenarios.Explain.analyze records in
  Alcotest.(check bool) "at least initial + failover elections" true
    (List.length elections >= 2);
  List.iter
    (fun (e : Scenarios.Explain.election) ->
      Alcotest.(check bool) "winning role change has a cause" false
        (Cause.is_none e.cause);
      Alcotest.(check bool) "cause is an election timer" true
        (Cause.kind e.cause = Cause.Election_timer);
      let has p = List.exists p e.chain in
      Alcotest.(check bool) "chain has the timeout" true
        (has (fun r ->
             match r.Forensics.ev with
             | Forensics.Timeout _ -> true
             | _ -> false));
      Alcotest.(check bool) "chain has the campaign" true
        (has (fun r ->
             match r.Forensics.ev with
             | Forensics.Campaign _ -> true
             | _ -> false));
      Alcotest.(check bool) "chain has granted votes" true
        (has (fun r ->
             match r.Forensics.ev with
             | Forensics.Vote { granted = true; _ } -> true
             | _ -> false));
      (* The chain crosses the network: the voters' records carry the
         winner's cause. *)
      Alcotest.(check bool) "chain spans several nodes" true
        (List.length
           (List.sort_uniq compare
              (List.map (fun r -> r.Forensics.node) e.chain))
        >= 2);
      (* Straggler vote responses and follower-side records stamped with
         the same cause can land after the win, so "contains", not
         "ends at". *)
      Alcotest.(check bool) "chain contains the winning role change" true
        (has (fun r ->
             match r.Forensics.ev with
             | Forensics.Role { role = "leader" } -> r.Forensics.node = e.winner
             | _ -> false));
      Alcotest.(check bool) "kill-driven elections are justified" true
        e.justified)
    elections

(* {1 Flight recorder} *)

(* Mirrors test_check's broken-toy pattern: a staged violation must
   carry whatever the registered flight-recorder hook returns. *)
let test_violation_carries_flight_dump () =
  let ids = Netsim.Node_id.range 2 in
  let a = Test_check.fake (List.nth ids 0)
  and b = Test_check.fake (List.nth ids 1) in
  let t =
    Check.create ~mode:Check.Always
      ~nodes:(List.map Test_check.view [ a; b ])
      ()
  in
  let ring = Forensics.create ~capacity:4 () in
  record_n ring 2;
  Check.set_flight_recorder t (fun () -> Forensics.tail ring 4);
  Check.check_now t;
  a.Test_check.role <- Raft.Types.Leader;
  a.Test_check.term <- 3;
  b.Test_check.role <- Raft.Types.Leader;
  b.Test_check.term <- 3;
  match Check.check_now t with
  | () -> Alcotest.fail "staged violation not raised"
  | exception Check.Violation v ->
      Alcotest.(check (list string)) "violation carries the ring tail"
        (Forensics.tail ring 4) v.Check.flight;
      (* The dump is part of the rendered report. *)
      let contains haystack needle =
        let n = String.length needle and h = String.length haystack in
        let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
        n = 0 || go 0
      in
      let rendered = Format.asprintf "%a" Check.pp_violation v in
      Alcotest.(check bool) "pp includes the flight recorder" true
        (List.for_all (contains rendered) (Forensics.tail ring 4))

let test_violation_default_flight_empty () =
  let ids = Netsim.Node_id.range 2 in
  let a = Test_check.fake (List.nth ids 0)
  and b = Test_check.fake (List.nth ids 1) in
  let t =
    Check.create ~mode:Check.Always
      ~nodes:(List.map Test_check.view [ a; b ])
      ()
  in
  Check.check_now t;
  a.Test_check.role <- Raft.Types.Leader;
  a.Test_check.term <- 3;
  b.Test_check.role <- Raft.Types.Leader;
  b.Test_check.term <- 3;
  match Check.check_now t with
  | () -> Alcotest.fail "staged violation not raised"
  | exception Check.Violation v ->
      Alcotest.(check (list string)) "no hook, no dump" [] v.Check.flight

let tests =
  [
    Alcotest.test_case "cause: pack/unpack round-trips" `Quick
      test_cause_roundtrip;
    Alcotest.test_case "cause: to_string" `Quick test_cause_to_string;
    to_alcotest prop_cause_roundtrip;
    Alcotest.test_case "ring: eviction order and dropped count" `Quick
      test_ring_eviction_order;
    Alcotest.test_case "ring: capacity validated" `Quick
      test_ring_capacity_validation;
    Alcotest.test_case "ring: disabled is inert" `Quick
      test_forensics_disabled_inert;
    Alcotest.test_case "ring: merge_rendered shard prefixes" `Quick
      test_merge_rendered_prefixes;
    Alcotest.test_case "recorder: cadence, dump, exports" `Quick
      test_recorder_cadence;
    Alcotest.test_case "recorder: disabled is inert" `Quick
      test_recorder_disabled_inert;
    Alcotest.test_case "recorder: merge shard prefixes" `Quick
      test_recorder_merge_prefixes;
    Alcotest.test_case "fig4: recorder series jobs-invariant, digest neutral"
      `Quick test_fig4_recorder_jobs_invariant;
    Alcotest.test_case "fig8: recorder series jobs-invariant" `Quick
      test_fig8_recorder_jobs_invariant;
    to_alcotest prop_recorder_jobs_invariant;
    Alcotest.test_case "explain: synthetic ring analysis" `Quick
      test_explain_analyze_synthetic;
    Alcotest.test_case "explain: rendered output (golden)" `Quick
      test_explain_print_golden;
    Alcotest.test_case "explain: live chains complete" `Quick
      test_explain_live_chains_complete;
    Alcotest.test_case "check: violation carries flight dump" `Quick
      test_violation_carries_flight_dump;
    Alcotest.test_case "check: default flight dump empty" `Quick
      test_violation_default_flight_empty;
  ]
